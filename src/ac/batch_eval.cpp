#include "ac/batch_eval.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "ac/tape_layout.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace problp::ac {

namespace {

/// Re-throws a worker exception as a member of the problp::Error family:
/// sessions and servers catch that family at the API boundary, so a foreign
/// exception escaping a worker thread (an allocator failure, an injected
/// fault, a bug) must be wrapped, not leaked raw — and never allowed to
/// reach std::terminate.
[[noreturn]] void rethrow_worker_error(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const Error&) {
    throw;  // already the family the API documents
  } catch (const std::exception& ex) {
    throw Error(std::string("batched evaluation worker failed: ") + ex.what());
  } catch (...) {
    throw Error("batched evaluation worker failed with a non-standard exception");
  }
}

}  // namespace

void parallel_blocks(std::size_t count, std::size_t block, int num_threads,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t threads =
      std::min<std::size_t>(static_cast<std::size_t>(num_threads),
                            std::max<std::size_t>(count / block, 1));
  if (threads <= 1) {
    // Same error contract as the threaded path: the inline worker's
    // exceptions surface wrapped as problp::Error too.
    try {
      fn(0, count, 0);
    } catch (...) {
      rethrow_worker_error(std::current_exception());
    }
    return;
  }
  // Contiguous chunks, block-aligned so no block straddles two workers.
  const std::size_t num_blocks = (count + block - 1) / block;
  const std::size_t blocks_per_thread = (num_blocks + threads - 1) / threads;
  std::vector<std::thread> pool;
  std::vector<std::exception_ptr> errors(threads);
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t begin = std::min(count, t * blocks_per_thread * block);
    const std::size_t end = std::min(count, (t + 1) * blocks_per_thread * block);
    if (begin >= end) break;
    pool.emplace_back([&fn, &errors, begin, end, t] {
      try {
        fn(begin, end, t);
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (auto& th : pool) th.join();
  for (const std::exception_ptr& e : errors) {
    if (e) rethrow_worker_error(e);
  }
}

std::size_t auto_block_size(std::size_t num_rows, std::size_t elem_bytes, bool relayout,
                            std::size_t min_block) {
  // kCacheTargetBytes for the SoA value buffer: a typical per-core L2.
  // Measured on the ALARM tape (3.3k nodes), the resulting 32-lane blocks
  // beat both 16 and 64; buffers past the target are bandwidth-bound
  // anyway and take the minimum block, which at least halves the old
  // hard-coded-16 working set.
  // Under the relayout the buffer is compacted to max-live rows but the
  // schedule's three i32 index streams are not; a 32-lane floor and the
  // doubled target let big tapes amortise those streams (the measured ve36
  // optimum — see kRelayoutCacheTargetBytes) instead of dropping to blocks
  // where the index traffic dominates.
  // Multiples of 8 lanes keep every row of the 64-byte-aligned buffer
  // aligned at a vector boundary (8 doubles == one AVX-512 register).
  constexpr std::size_t kLaneMultiple = 8;
  constexpr std::size_t kMaxBlock = 64;
  const std::size_t target = relayout ? kRelayoutCacheTargetBytes : kCacheTargetBytes;
  const std::size_t floor = std::max(min_block, relayout ? std::size_t{32} : std::size_t{8});
  const std::size_t fit = target / std::max<std::size_t>(num_rows * elem_bytes, 1);
  return std::clamp(fit / kLaneMultiple * kLaneMultiple, floor, kMaxBlock);
}

BatchEvaluator::BatchEvaluator(const CircuitTape& tape, Options options)
    : tape_(&tape), options_(options) {
  require(options_.num_threads >= 0, "BatchEvaluator: num_threads must be >= 0");
  if (options_.num_threads == 0) {
    options_.num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Resolve the kernel ISA eagerly even when force_generic: a misspelled
  // PROBLP_SIMD or an unsupported forced level fails loudly at setup.
  level_ = options_.simd ? simd::dispatch_level(*options_.simd) : simd::dispatch_level();
  rows_ = tape.num_nodes();
  root_row_ = static_cast<std::size_t>(tape.root());
  if (!options_.force_generic) {
    if (options_.relayout) {
      const TapeLayout& layout = tape.layout();
      // Slot-space schedule precompiled once per tape; shared, not rebuilt.
      schedule_ = tape.layout_schedule();
      row_of_ = layout.slot_of().data();
      rows_ = layout.num_slots();
      root_row_ = static_cast<std::size_t>(
          row_of_[static_cast<std::size_t>(tape.root())]);
    } else {
      schedule_ = std::make_shared<const KernelSchedule>(KernelSchedule::compile(tape));
    }
    sweep_ = simd::exact_sweep(level_);
  }
  if (options_.block == 0) {
    // Post-layout footprint: max-live rows under the relayout, so big
    // circuits with a small live frontier regain wide cache-fitting blocks.
    options_.block = auto_block_size(rows_, sizeof(double), relayout_engaged());
  }
  // Evidence-template image election: caching a block-shaped composed image
  // per worker doubles the working set exactly like the low-precision leaf
  // image does, so it takes the same residency bar — value buffer + image
  // together inside the cache target.  Past the bar uniform blocks still
  // win from the whole-row evidence zeroing; only the memcpy re-init is
  // skipped.
  use_template_image_ = 2 * rows_ * options_.block * sizeof(double) <= kCacheTargetBytes;
  workspaces_.resize(static_cast<std::size_t>(options_.num_threads));
}

const std::vector<double>& BatchEvaluator::evaluate(
    const std::vector<PartialAssignment>& batch) {
  return evaluate(batch.data(), batch.size());
}

const std::vector<double>& BatchEvaluator::evaluate(const PartialAssignment* batch,
                                                    std::size_t count) {
  roots_.resize(count);
  parallel_blocks(count, options_.block, options_.num_threads,
                  [this, batch](std::size_t begin, std::size_t end, std::size_t worker) {
                    // Fault site: a worker thread throws a foreign (non-
                    // problp) exception; parallel_blocks must surface it on
                    // the caller as problp::Error, never std::terminate.
                    if (util::fault_point("batch.worker")) {
                      throw std::runtime_error("injected worker fault");
                    }
                    evaluate_range(batch, begin, end, workspaces_[worker]);
                  });
  return roots_;
}

void BatchEvaluator::evaluate_range(const PartialAssignment* batch, std::size_t begin,
                                    std::size_t end, Workspace& ws) {
  const CircuitTape& tape = *tape_;
  const std::size_t n = rows_;
  const std::int32_t* row_of = row_of_;
  const auto row = [row_of](NodeId id) {
    return row_of == nullptr ? static_cast<std::size_t>(id)
                             : static_cast<std::size_t>(row_of[static_cast<std::size_t>(id)]);
  };

  // Shared-evidence hoist: batches often repeat one evidence template in
  // consecutive slots (coalesced conditional numerators, steady-state
  // validation sweeps) — resolving the template once per *run* instead of
  // once per query keeps the per-query setup O(changed), and an equality
  // probe against the previous assignment is cheaper than re-validating it.
  const PartialAssignment* prev = nullptr;

  for (std::size_t b0 = begin; b0 < end; b0 += options_.block) {
    const std::size_t w = std::min(options_.block, end - b0);
    ws.buffer.resize(n * w);
    double* buf = ws.buffer.data();

    // Whole-block evidence template: when every column shares one
    // assignment (coalesced conditional numerators, steady-state serving),
    // the per-column zeroing collapses to one whole-row fill per
    // contradicted slot — and when this worker already composed exactly
    // this template at this width, the entire leaf init + zeroing is one
    // memcpy of the cached image.
    bool uniform = true;
    for (std::size_t j = 1; j < w && uniform; ++j) {
      uniform = batch[b0 + j] == batch[b0];
    }
    if (uniform && ws.template_valid && ws.template_w == w &&
        ws.template_key == batch[b0]) {
      std::memcpy(buf, ws.template_image.data(), n * w * sizeof(double));
      // ws.observed was not refreshed for this template — force the next
      // non-template column to re-resolve rather than hoist stale evidence.
      prev = nullptr;
    } else {
      // Leaf rows from the base pattern (parameters at θ, indicators at 1);
      // operator rows are overwritten by the sweep and need no
      // initialisation.
      const auto& base = tape.base_values();
      for (const NodeId id : tape.param_ids()) {
        const std::size_t r = row(id);
        std::fill(buf + r * w, buf + r * w + w, base[static_cast<std::size_t>(id)]);
      }
      for (const NodeId id : tape.indicator_ids()) {
        const std::size_t r = row(id);
        std::fill(buf + r * w, buf + r * w + w, 1.0);
      }
      if (uniform) {
        const PartialAssignment& a = batch[b0];
        if (prev == nullptr || !(a == *prev)) tape.resolve_observed(a, ws.observed);
        prev = &batch[b0 + w - 1];
        tape.zero_contradicted_rows(ws.observed, buf, w, 0.0, row_of);
        if (use_template_image_ && w == options_.block) {
          ws.template_image.assign(buf, buf + n * w);
          ws.template_key = a;
          ws.template_w = w;
          ws.template_valid = true;
        }
      } else {
        for (std::size_t j = 0; j < w; ++j) {
          const PartialAssignment& a = batch[b0 + j];
          if (prev == nullptr || !(a == *prev)) tape.resolve_observed(a, ws.observed);
          prev = &a;
          tape.zero_contradicted(ws.observed, buf, w, j, row_of);
        }
      }
    }

    if (sweep_ != nullptr) {
      sweep_(*schedule_, buf, w);
    } else {
      generic_sweep(buf, w);
    }

    const double* root_row = buf + root_row_ * w;
    for (std::size_t j = 0; j < w; ++j) roots_[b0 + j] = root_row[j];
  }
}

void BatchEvaluator::generic_sweep(double* buf, std::size_t w) const {
  const CircuitTape& tape = *tape_;
  const auto& kinds = tape.kinds();
  const auto& offsets = tape.child_offsets();
  const auto& children = tape.children();

  for (const NodeId id : tape.op_ids()) {
    const std::size_t i = static_cast<std::size_t>(id);
    const std::int32_t cb = offsets[i];
    const std::int32_t ce = offsets[i + 1];
    double* out = buf + i * w;
    const double* first =
        buf + static_cast<std::size_t>(children[static_cast<std::size_t>(cb)]) * w;
    std::memcpy(out, first, w * sizeof(double));
    switch (kinds[i]) {
      case NodeKind::kSum:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const double* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] += rhs[j];
        }
        break;
      case NodeKind::kProd:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const double* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] *= rhs[j];
        }
        break;
      case NodeKind::kMax:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const double* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = std::max(out[j], rhs[j]);
        }
        break;
      default:
        break;  // leaves never appear in op_ids
    }
  }
}

}  // namespace problp::ac
