// Differential evaluation of arithmetic circuits (Darwiche's "differential
// approach"): one upward pass computes every node value, one downward pass
// computes every partial derivative ∂root/∂node.
//
// Why it's here: the paper's footnote 2 notes that conditional probabilities
// "can also be estimated by an upward and a downward pass in an AC followed
// with a division" — this module implements that alternative query engine,
// and with it *all* per-variable posteriors fall out of a single pass pair:
//
//     ∂f/∂λ_{X=x}  evaluated at evidence e  ==  Pr(x, e \ X),
//
// i.e. the joint of X=x with the evidence on the remaining variables.
//
// Restrictions: the circuit must be binary (fold order fixed) and must not
// contain MAX nodes (the maximiser is not differentiable in this sense).
#pragma once

#include <vector>

#include "ac/circuit.hpp"
#include "ac/evaluator.hpp"

namespace problp::ac {

struct DifferentialResult {
  std::vector<double> value;       ///< upward: node values
  std::vector<double> derivative;  ///< downward: ∂root/∂node
  double root_value = 0.0;
};

/// Upward + downward pass under `assignment`.
DifferentialResult evaluate_with_derivatives(const Circuit& binary_circuit,
                                             const PartialAssignment& assignment);

/// marginals[v][s] == Pr(X_v = s, e restricted to variables other than v),
/// for every variable simultaneously, from one pass pair.  For an observed
/// variable v this is the "what if v had been s instead" family of joints.
std::vector<std::vector<double>> all_joint_marginals(const Circuit& binary_circuit,
                                                     const PartialAssignment& assignment);

/// Posterior over `query_var` given the evidence (query_var must be
/// unobserved): ∂f/∂λ_{q} normalised over states.  Throws when Pr(e) == 0.
std::vector<double> posterior_from_derivatives(const Circuit& binary_circuit, int query_var,
                                               const PartialAssignment& assignment);

}  // namespace problp::ac
