// Circuit evaluation.
//
// The same forward sweep serves three clients through the Ops customisation
// point: exact double evaluation (ground truth), emulated low-precision
// evaluation (lowprec types), and the range analyses (interval-ish values).
//
// An upward pass with indicators set per the evidence computes Pr(e)
// (paper §2): indicators contradicting the evidence are 0, all others 1.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ac/circuit.hpp"

namespace problp::ac {

/// Partial assignment of circuit variables: assignment[v] is the observed
/// state of variable v, or nullopt when v is unobserved.
using PartialAssignment = std::vector<std::optional<int>>;

/// λ_{var=state} under `assignment`: 0 when contradicted, else 1.
inline bool indicator_is_one(const PartialAssignment& assignment, int var, int state) {
  const auto& obs = assignment.at(static_cast<std::size_t>(var));
  return !obs.has_value() || *obs == state;
}

/// Pre-resolved evidence: out[v] is the observed state of v, or -1.  One
/// bounds- and range-checked pass per query, so the per-indicator test in
/// the sweep is a plain array load instead of an `optional` + `.at()` on
/// the hot path.  Out-of-range states are rejected here — -1 is the
/// sentinel for "unobserved", so a negative observed state must not leak
/// into the sweeps.
inline void resolve_observed(const PartialAssignment& assignment,
                             const std::vector<int>& cardinalities,
                             std::vector<std::int32_t>& out) {
  require(assignment.size() == cardinalities.size(),
          "resolve_observed: assignment size mismatch");
  out.resize(assignment.size());
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    if (assignment[v].has_value()) {
      require(*assignment[v] >= 0 && *assignment[v] < cardinalities[v],
              "resolve_observed: observed state out of range");
      out[v] = *assignment[v];
    } else {
      out[v] = -1;
    }
  }
}

/// Exact double arithmetic — the Ops used for ground truth and the max
/// analysis, shared by the interpreter and the tape engine.
struct ExactOps {
  double from_parameter(double v) const { return v; }
  double from_indicator(bool one) const { return one ? 1.0 : 0.0; }
  double add(double a, double b) const { return a + b; }
  double mul(double a, double b) const { return a * b; }
  double max(double a, double b) const { return a < b ? b : a; }
};

/// Generic forward sweep.  Ops must provide:
///   T from_parameter(double v);
///   T from_indicator(bool one);          // value of lambda in {0, 1}
///   T add(const T&, const T&);
///   T mul(const T&, const T&);
///   T max(const T&, const T&);
/// n-ary operators fold left-to-right in stored child order; analyses whose
/// result depends on association order should run on binarised circuits.
template <class Ops>
auto evaluate_all(const Circuit& circuit, const PartialAssignment& assignment, Ops&& ops)
    -> std::vector<decltype(ops.from_parameter(0.0))> {
  using T = decltype(ops.from_parameter(0.0));
  require(assignment.size() == static_cast<std::size_t>(circuit.num_variables()),
          "evaluate_all: assignment size mismatch");
  std::vector<std::int32_t> observed;
  resolve_observed(assignment, circuit.cardinalities(), observed);
  std::vector<T> values;
  values.reserve(circuit.num_nodes());
  for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
    const Node& n = circuit.node(static_cast<NodeId>(i));
    switch (n.kind) {
      case NodeKind::kIndicator: {
        const std::int32_t obs = observed[static_cast<std::size_t>(n.var)];
        values.push_back(ops.from_indicator(obs < 0 || obs == n.state));
        break;
      }
      case NodeKind::kParameter:
        values.push_back(ops.from_parameter(n.value));
        break;
      case NodeKind::kSum:
      case NodeKind::kProd:
      case NodeKind::kMax: {
        require(!n.children.empty(), "evaluate_all: operator node has no children");
        T acc = values[static_cast<std::size_t>(n.children.front())];
        for (std::size_t k = 1; k < n.children.size(); ++k) {
          const T& rhs = values[static_cast<std::size_t>(n.children[k])];
          if (n.kind == NodeKind::kSum) {
            acc = ops.add(acc, rhs);
          } else if (n.kind == NodeKind::kProd) {
            acc = ops.mul(acc, rhs);
          } else {
            acc = ops.max(acc, rhs);
          }
        }
        values.push_back(std::move(acc));
        break;
      }
    }
  }
  return values;
}

/// Exact (double) value of every node.
std::vector<double> evaluate_all_double(const Circuit& circuit,
                                        const PartialAssignment& assignment);

/// Exact (double) value of the root.
double evaluate(const Circuit& circuit, const PartialAssignment& assignment);

/// All-unobserved assignment (every indicator 1) for this circuit.
PartialAssignment all_indicators_one(const Circuit& circuit);

}  // namespace problp::ac
