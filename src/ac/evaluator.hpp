// Circuit evaluation.
//
// The same forward sweep serves three clients through the Ops customisation
// point: exact double evaluation (ground truth), emulated low-precision
// evaluation (lowprec types), and the range analyses (interval-ish values).
//
// An upward pass with indicators set per the evidence computes Pr(e)
// (paper §2): indicators contradicting the evidence are 0, all others 1.
#pragma once

#include <optional>
#include <vector>

#include "ac/circuit.hpp"

namespace problp::ac {

/// Partial assignment of circuit variables: assignment[v] is the observed
/// state of variable v, or nullopt when v is unobserved.
using PartialAssignment = std::vector<std::optional<int>>;

/// λ_{var=state} under `assignment`: 0 when contradicted, else 1.
inline bool indicator_is_one(const PartialAssignment& assignment, int var, int state) {
  const auto& obs = assignment.at(static_cast<std::size_t>(var));
  return !obs.has_value() || *obs == state;
}

/// Generic forward sweep.  Ops must provide:
///   T from_parameter(double v);
///   T from_indicator(bool one);          // value of lambda in {0, 1}
///   T add(const T&, const T&);
///   T mul(const T&, const T&);
///   T max(const T&, const T&);
/// n-ary operators fold left-to-right in stored child order; analyses whose
/// result depends on association order should run on binarised circuits.
template <class Ops>
auto evaluate_all(const Circuit& circuit, const PartialAssignment& assignment, Ops&& ops)
    -> std::vector<decltype(ops.from_parameter(0.0))> {
  using T = decltype(ops.from_parameter(0.0));
  require(assignment.size() == static_cast<std::size_t>(circuit.num_variables()),
          "evaluate_all: assignment size mismatch");
  std::vector<T> values;
  values.reserve(circuit.num_nodes());
  for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
    const Node& n = circuit.node(static_cast<NodeId>(i));
    switch (n.kind) {
      case NodeKind::kIndicator:
        values.push_back(ops.from_indicator(indicator_is_one(assignment, n.var, n.state)));
        break;
      case NodeKind::kParameter:
        values.push_back(ops.from_parameter(n.value));
        break;
      case NodeKind::kSum:
      case NodeKind::kProd:
      case NodeKind::kMax: {
        T acc = values[static_cast<std::size_t>(n.children.front())];
        for (std::size_t k = 1; k < n.children.size(); ++k) {
          const T& rhs = values[static_cast<std::size_t>(n.children[k])];
          if (n.kind == NodeKind::kSum) {
            acc = ops.add(acc, rhs);
          } else if (n.kind == NodeKind::kProd) {
            acc = ops.mul(acc, rhs);
          } else {
            acc = ops.max(acc, rhs);
          }
        }
        values.push_back(std::move(acc));
        break;
      }
    }
  }
  return values;
}

/// Exact (double) value of every node.
std::vector<double> evaluate_all_double(const Circuit& circuit,
                                        const PartialAssignment& assignment);

/// Exact (double) value of the root.
double evaluate(const Circuit& circuit, const PartialAssignment& assignment);

/// All-unobserved assignment (every indicator 1) for this circuit.
PartialAssignment all_indicators_one(const Circuit& circuit);

}  // namespace problp::ac
