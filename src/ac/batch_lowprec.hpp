// Batched multi-query *low-precision* evaluation over a CircuitTape — the
// emulated-datapath sibling of ac/batch_eval.hpp.
//
// Observed-error sweeps and low-precision serving batches evaluate one
// circuit under hundreds of evidence sets on the emulated FixedPoint /
// SoftFloat datapath.  The per-query Fixed/FloatTapeEvaluator pays the full
// sweep overhead (dispatch, value-object copies, per-op format checks) once
// per query; this engine instead sweeps the tape once per *block* of queries
// over a structure-of-arrays buffer of bare raw words:
//
//   buffer[row * W + j] = raw word of a node's slot under the j-th block query
//
// where rows follow the cache-shaped tape layout when Options::relayout is
// on (op reordering + liveness-based slot reuse, ac/tape_layout.hpp — the
// buffer holds max-live rows, not one per node) and the identity node-id
// layout otherwise.
//
// For fixed point a slot is the scaled-integer u128 word; for float it is
// the (exp, sig) register pair — the same words the generated hardware
// holds, with the shared format hoisted out of every slot.  Parameters are
// quantised exactly once into an SoA leaf cache at construction, and each
// column carries its own sticky ArithFlags, so per query the engine returns
// results *and* flags bit-identical to the per-query evaluator (which is
// itself bit-identical to the one-shot evaluate_fixed / evaluate_float on
// the source circuit).  That identity is by construction, not by luck: the
// fold order matches the interpreter's, and the arithmetic is the raw-word
// kernels (fx_*_raw / fl_*_raw) that the object-level operators are thin
// wrappers over.
//
// Like the exact engine, each block runs the specialised kernel schedule by
// default (ac/kernel_schedule.hpp): homogeneous fanin-2 runs execute as
// straight two-operand loops — no CSR lookups, no first-child copy, no
// per-op kind branch — and only the non-binarised remainder walks the
// generic fold.
//
// Fixed formats narrow enough that every stored word fits u32 and every
// intermediate closes over u64 (FixedFormat::fits_narrow_word(), total
// width <= 30 bits) additionally ride the **lane-parallel narrow-word
// datapath**: the SoA block stores u32 raw words (half the buffer traffic
// of the raw u64 layout, twice the lanes per vector register) and the
// schedule executes through width-specialised fixed-point lane kernels
// compiled into the same per-ISA translation units as the exact sweep
// (ac/simd_sweep.hpp — same tag-type scheme, same PROBLP_SIMD/cpuid
// dispatch), with per-lane sticky overflow masks OR-reduced into the
// per-column flags after the sweep.  The u32 kernels are bit-identical to
// the u128 ones by construction (same rounding arithmetic through the
// exact u64 product, same saturation point, same flag stickiness; see
// lowprec/fixed_point.hpp).
//
// The float datapath rides its own **lane-parallel decomposed path**: the
// interleaved (exp, sig) FloatRaw block splits into a separate i32 exponent
// row and an unsigned significand row per slot — u32 significand lanes when
// FloatFormat::fits_narrow_word() (M <= 27), u64 lanes when
// fits_lane_word() (M <= 31) — and the schedule executes through the
// branch-free float lane kernels of lowprec/soft_float.hpp, compiled into
// the same per-ISA translation units under the same dispatch.  The kernels
// replay fl_add_raw / fl_mul_raw / fl_max_raw bit for bit (mask-select
// alignment with a guard/round/sticky shift-OR, nearest-even via the
// carry-bias identity, saturation and flush-to-zero as per-lane sticky
// masks OR-reduced into the per-column flags after the sweep).  Mantissas
// past 31 bits keep the lane-serial interleaved path, where the schedule is
// what ISA dispatch cannot buy.  Options::force_generic keeps the original
// wide fold as the parity reference; Options::force_wide_raw pins the
// interleaved schedule path (u128 words for fixed, FloatRaw pairs for
// float) on lane-eligible formats.
//
// Every datapath can initialise each block from a **precomposed leaf
// image**: a block-shaped copy of the quantised leaf cache (parameters
// broadcast over their rows, indicators at the quantised one) laid out at
// construction, so steady-state per-block init is a single memcpy instead
// of a per-node scatter, followed only by the per-column evidence zeroing.
// The image is elected cache-aware: it wins while buffer + image stay
// L2-resident and reverts to the scatter on larger tapes (measured; see
// init_leaf_image).  Blocks whose every column shares one evidence
// template additionally collapse the per-column zeroing to whole-row fills
// and, under the same residency bar, re-initialise from a per-worker
// composed template image with one memcpy (mirroring BatchEvaluator).
//
// An optional thread partition mirrors BatchEvaluator: the batch dimension
// splits into block-aligned contiguous chunks, each worker owns its buffer,
// and results/flags land at disjoint indices of the shared output vectors.
// Buffers are owned by the evaluator and reused across calls (zero
// allocation in steady state).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ac/batch_eval.hpp"
#include "ac/tape.hpp"
#include "lowprec/fixed_point.hpp"
#include "lowprec/soft_float.hpp"

namespace problp::ac {

/// Raw-word ops policy for the fixed-point datapath: one u128 scaled-integer
/// word per slot, format/rounding hoisted into the policy.
struct FixedRawOps {
  lowprec::FixedFormat fmt;
  lowprec::RoundingMode mode;

  using Raw = u128;
  /// Narrow formats may switch this policy's storage to u32 lanes.
  static constexpr bool kNarrowCapable = true;
  /// The decomposed (exp, sig) lane datapath is float-only.
  static constexpr bool kLaneCapable = false;

  /// Fail an unemulatable format (total width > 62 bits would silently wrap
  /// the u128 product in fx_mul_raw) at construction, with a clear error.
  void validate() const { fmt.validate(); }
  bool narrow_eligible() const { return fmt.fits_narrow_word(); }
  int lane_sig_bits() const { return 0; }

  Raw quantize(double v, lowprec::ArithFlags& flags) const {
    return lowprec::FixedPoint::from_double(v, fmt, flags, mode).raw();
  }
  Raw add(const Raw& a, const Raw& b, lowprec::ArithFlags& flags) const {
    return lowprec::fx_add_raw(a, b, fmt, flags);
  }
  Raw mul(const Raw& a, const Raw& b, lowprec::ArithFlags& flags) const {
    return lowprec::fx_mul_raw(a, b, fmt, flags, mode);
  }
  Raw max(const Raw& a, const Raw& b, lowprec::ArithFlags&) const {
    return lowprec::fx_max_raw(a, b);
  }
  double widen(const Raw& r) const { return lowprec::fx_raw_to_double(r, fmt); }
};

/// Raw-word ops policy for the float datapath: one (exp, sig) register pair
/// per slot.
struct FloatRawOps {
  lowprec::FloatFormat fmt;
  lowprec::RoundingMode mode;

  using Raw = lowprec::FloatRaw;
  /// The fixed-point u32 narrow path does not apply to (exp, sig) pairs...
  static constexpr bool kNarrowCapable = false;
  /// ...but lane-eligible mantissas decompose into separate exponent and
  /// significand rows for the lane-parallel float datapath.
  static constexpr bool kLaneCapable = true;

  /// Fail an unemulatable format at construction, with a clear error:
  /// beyond FloatFormat::validate(), re-asserts the kernel envelopes the
  /// engine's raw-word sweeps depend on (see the definition).
  void validate() const;
  bool narrow_eligible() const { return false; }
  /// Significand lane width of the decomposed datapath for this format —
  /// 32 when M <= 27 (the add path's guard-extended sum closes over u32),
  /// 64 when M <= 31 (the exact product closes over one u64 multiply), and
  /// 0 for wider mantissas (lane-serial interleaved path).
  int lane_sig_bits() const {
    return fmt.fits_narrow_word() ? 32 : (fmt.fits_lane_word() ? 64 : 0);
  }

  Raw quantize(double v, lowprec::ArithFlags& flags) const {
    return lowprec::SoftFloat::from_double(v, fmt, flags, mode).raw();
  }
  Raw add(const Raw& a, const Raw& b, lowprec::ArithFlags& flags) const {
    return lowprec::fl_add_raw(a, b, fmt, flags, mode);
  }
  Raw mul(const Raw& a, const Raw& b, lowprec::ArithFlags& flags) const {
    return lowprec::fl_mul_raw(a, b, fmt, flags, mode);
  }
  Raw max(const Raw& a, const Raw& b, lowprec::ArithFlags&) const {
    return lowprec::fl_max_raw(a, b);
  }
  double widen(const Raw& r) const { return lowprec::fl_raw_to_double(r, fmt); }
};

template <class RawOps>
class LowPrecBatchEvaluator {
 public:
  /// Same shape knobs as the exact batched engine (SoA block width W,
  /// worker threads; 0 = one thread per hardware core).
  using Options = BatchEvaluator::Options;
  using Raw = typename RawOps::Raw;

  LowPrecBatchEvaluator(const CircuitTape& tape, RawOps ops, Options options = {});

  LowPrecBatchEvaluator(const LowPrecBatchEvaluator&) = delete;
  LowPrecBatchEvaluator& operator=(const LowPrecBatchEvaluator&) = delete;

  /// Root value per assignment (widened to double), in input order; per-query
  /// flags land in flags().  The references stay valid until the next
  /// evaluate call.
  const std::vector<double>& evaluate(const std::vector<PartialAssignment>& batch);
  const std::vector<double>& evaluate(const PartialAssignment* batch, std::size_t count);

  /// Sticky flags per query of the last evaluate call, aligned with the
  /// results; each entry folds in the parameter-quantisation flags, exactly
  /// like the per-query evaluator's result does.
  const std::vector<lowprec::ArithFlags>& flags() const { return flags_; }

  /// Union of flags() — the merged-per-batch channel sessions surface.
  lowprec::ArithFlags merged_flags() const;

  const CircuitTape& tape() const { return *tape_; }
  const Options& options() const { return options_; }
  /// The dispatched kernel ISA (resolved at construction on both datapaths).
  simd::Level simd_level() const { return level_; }
  /// Whether this evaluator runs the lane-parallel narrow-word (u32)
  /// datapath — fixed formats with fits_narrow_word(), unless
  /// force_generic / force_wide_raw pins the u128 reference path.
  bool narrow_datapath() const { return narrow_; }
  /// Significand lane width (32 or 64) of the decomposed float datapath
  /// this evaluator runs, or 0 on the interleaved path (fixed datapath,
  /// force_generic / force_wide_raw, or a mantissa past 31 bits).
  int float_lane_bits() const { return lane_bits_; }
  /// Whether full blocks initialise from the precomposed leaf image (one
  /// memcpy) instead of the per-node scatter; elected at construction by
  /// cache residency (see init_leaf_image).
  bool uses_leaf_image() const { return use_leaf_image_; }
  /// Rows of the per-block SoA buffer: the tape layout's num_slots() when
  /// the relayout is engaged, num_nodes otherwise (see ac/tape_layout.hpp).
  std::size_t num_rows() const { return rows_; }
  /// Whether this evaluator runs the slot-reuse layout (Options::relayout
  /// AND the kernel-schedule backend).
  bool relayout_engaged() const { return row_of_ != nullptr; }

 private:
  struct Workspace {
    simd::AlignedBuffer<Raw> buffer;     ///< rows * W structure-of-arrays raw words
    simd::AlignedBuffer<std::uint32_t> narrow_buffer;  ///< u32 rows (narrow datapath)
    simd::AlignedBuffer<std::uint32_t> overflow;  ///< per-lane sticky overflow masks
    simd::AlignedBuffer<std::int32_t> exp_buffer;  ///< i32 exponent rows (float lanes)
    simd::AlignedBuffer<std::uint32_t> sig32_buffer;  ///< u32 significand rows
    simd::AlignedBuffer<std::uint64_t> sig64_buffer;  ///< u64 significand rows
    simd::AlignedBuffer<std::uint32_t> underflow;     ///< u32-lane underflow masks
    simd::AlignedBuffer<std::uint64_t> overflow64;    ///< u64-lane sticky masks
    simd::AlignedBuffer<std::uint64_t> underflow64;
    std::vector<std::int32_t> observed;  ///< per-query resolved evidence scratch
    // Precomposed evidence-template image of the engaged datapath: the
    // leaf-initialised, evidence-zeroed block state of the last
    // whole-block-uniform template this worker composed; a following
    // uniform block with the same template restores it by memcpy.
    std::vector<Raw> template_image;
    std::vector<std::uint32_t> template_image_u32;
    std::vector<std::int32_t> template_image_exp;
    std::vector<std::uint32_t> template_image_sig32;
    std::vector<std::uint64_t> template_image_sig64;
    PartialAssignment template_key;  ///< template the image was composed for
    std::size_t template_w = 0;      ///< block width the image is shaped for
    bool template_valid = false;
  };

  /// Evaluates batch[begin, end) into roots_/flags_[begin, end) using `ws`.
  void evaluate_range(const PartialAssignment* batch, std::size_t begin, std::size_t end,
                      Workspace& ws);
  /// The narrow-word (u32) datapath twin of evaluate_range; compiled to a
  /// no-op for raw-ops policies without a narrow datapath.
  void narrow_evaluate_range(const PartialAssignment* batch, std::size_t begin,
                             std::size_t end, Workspace& ws);
  /// The decomposed float-lane twin of evaluate_range (Sig = the engaged
  /// significand lane type); compiled to a no-op for raw-ops policies
  /// without a lane datapath.
  template <class Sig>
  void lane_evaluate_range(const PartialAssignment* batch, std::size_t begin,
                           std::size_t end, Workspace& ws);
  /// Elects and lays out the block-shaped precomposed leaf image of the
  /// engaged datapath (one memcpy per full block instead of a per-node
  /// scatter, while cache residency makes that a win).
  void init_leaf_image();

  /// The specialised fanin-2 schedule executor for one block.
  void schedule_sweep(Raw* buf, lowprec::ArithFlags* qflags, std::size_t w);
  /// The generic CSR fold over tape op positions [pbegin, pend) — the
  /// force_generic backend (identity rows, whole-tape range).
  void generic_sweep(Raw* buf, lowprec::ArithFlags* qflags, std::size_t w, std::uint32_t pbegin,
                     std::uint32_t pend);
  /// The generic fallback of the schedule path: folds the schedule's
  /// self-contained (row-mapped) generic ops [gbegin, gend).
  void schedule_generic_run(Raw* buf, lowprec::ArithFlags* qflags, std::size_t w,
                            std::uint32_t gbegin, std::uint32_t gend);

  const CircuitTape* tape_;
  RawOps ops_;
  Options options_;
  simd::Level level_ = simd::Level::kScalar;
  /// Engaged unless force_generic; shares the tape's precompiled schedule
  /// on the relayout path.
  std::shared_ptr<const KernelSchedule> schedule_;
  const std::int32_t* row_of_ = nullptr;    ///< node id -> row; null = identity
  std::size_t rows_ = 0;                    ///< SoA buffer rows per block
  std::size_t root_row_ = 0;                ///< row of the root under row_of_
  bool narrow_ = false;                     ///< u32 datapath engaged
  int lane_bits_ = 0;                       ///< float sig lane width; 0 = interleaved
  bool use_leaf_image_ = false;             ///< leaf-image block init elected
  simd::FixedSweepFn narrow_sweep_ = nullptr;  ///< per-ISA u32 schedule executor
  simd::FixedSweepParams narrow_params_;       ///< precomputed format constants
  simd::FloatSweepFn32 float_sweep32_ = nullptr;  ///< per-ISA float lane executors
  simd::FloatSweepFn64 float_sweep64_ = nullptr;
  simd::FloatSweepParams float_params_;           ///< precomputed format constants
  lowprec::ArithFlags param_flags_;  ///< conversion flags the cached leaves would raise
  Raw one_{};                        ///< quantised indicator 1
  Raw zero_{};                       ///< quantised indicator 0
  std::vector<Raw> params_;          ///< SoA leaf cache, aligned with tape.param_ids()
  std::uint32_t one_u32_ = 0;        ///< narrow copies of the leaf constants
  std::uint32_t zero_u32_ = 0;
  std::vector<std::uint32_t> params_u32_;  ///< narrow leaf cache (lossless narrowing)
  std::int32_t one_exp_ = 0;               ///< decomposed copies of the leaf constants
  std::uint32_t one_sig32_ = 0;            ///< (zero is sig == 0 on every lane path)
  std::uint64_t one_sig64_ = 0;
  std::vector<std::int32_t> params_exp_;   ///< decomposed leaf caches (float lanes)
  std::vector<std::uint32_t> params_sig32_;
  std::vector<std::uint64_t> params_sig64_;
  std::vector<Raw> leaf_image_;            ///< precomposed block-shaped leaves (wide)
  std::vector<std::uint32_t> leaf_image_u32_;  ///< same, narrow datapath
  std::vector<std::int32_t> leaf_image_exp_;   ///< same, decomposed float lanes
  std::vector<std::uint32_t> leaf_image_sig32_;
  std::vector<std::uint64_t> leaf_image_sig64_;
  std::vector<Workspace> workspaces_;  ///< one per worker, reused across calls
  std::vector<double> roots_;
  std::vector<lowprec::ArithFlags> flags_;
};

extern template class LowPrecBatchEvaluator<FixedRawOps>;
extern template class LowPrecBatchEvaluator<FloatRawOps>;

/// Fixed-point batched engine over a compiled tape.  The format is
/// validated by the LowPrecBatchEvaluator constructor.
class FixedBatchEvaluator : public LowPrecBatchEvaluator<FixedRawOps> {
 public:
  FixedBatchEvaluator(const CircuitTape& tape, lowprec::FixedFormat format,
                      lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven,
                      Options options = {})
      : LowPrecBatchEvaluator(tape, FixedRawOps{format, mode}, options) {}
};

/// Float batched engine over a compiled tape.  The format is validated by
/// the LowPrecBatchEvaluator constructor.
class FloatBatchEvaluator : public LowPrecBatchEvaluator<FloatRawOps> {
 public:
  FloatBatchEvaluator(const CircuitTape& tape, lowprec::FloatFormat format,
                      lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven,
                      Options options = {})
      : LowPrecBatchEvaluator(tape, FloatRawOps{format, mode}, options) {}
};

}  // namespace problp::ac
