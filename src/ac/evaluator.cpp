#include "ac/evaluator.hpp"

namespace problp::ac {

std::vector<double> evaluate_all_double(const Circuit& circuit,
                                        const PartialAssignment& assignment) {
  return evaluate_all(circuit, assignment, ExactOps{});
}

double evaluate(const Circuit& circuit, const PartialAssignment& assignment) {
  require(circuit.root() != kInvalidNode, "evaluate: circuit has no root");
  return evaluate_all_double(circuit, assignment)[static_cast<std::size_t>(circuit.root())];
}

PartialAssignment all_indicators_one(const Circuit& circuit) {
  return PartialAssignment(static_cast<std::size_t>(circuit.num_variables()));
}

}  // namespace problp::ac
