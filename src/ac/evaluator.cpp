#include "ac/evaluator.hpp"

#include <algorithm>

namespace problp::ac {

namespace {

struct DoubleOps {
  double from_parameter(double v) const { return v; }
  double from_indicator(bool one) const { return one ? 1.0 : 0.0; }
  double add(double a, double b) const { return a + b; }
  double mul(double a, double b) const { return a * b; }
  double max(double a, double b) const { return std::max(a, b); }
};

}  // namespace

std::vector<double> evaluate_all_double(const Circuit& circuit,
                                        const PartialAssignment& assignment) {
  return evaluate_all(circuit, assignment, DoubleOps{});
}

double evaluate(const Circuit& circuit, const PartialAssignment& assignment) {
  require(circuit.root() != kInvalidNode, "evaluate: circuit has no root");
  return evaluate_all_double(circuit, assignment)[static_cast<std::size_t>(circuit.root())];
}

PartialAssignment all_indicators_one(const Circuit& circuit) {
  return PartialAssignment(static_cast<std::size_t>(circuit.num_variables()));
}

}  // namespace problp::ac
