#include "ac/circuit.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/strings.hpp"

namespace problp::ac {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSum: return "sum";
    case NodeKind::kProd: return "prod";
    case NodeKind::kMax: return "max";
    case NodeKind::kIndicator: return "lambda";
    case NodeKind::kParameter: return "theta";
  }
  return "?";
}

std::string CircuitStats::to_string() const {
  return str_format(
      "nodes=%zu (sum=%zu prod=%zu max=%zu lambda=%zu theta=%zu) edges=%zu depth=%d max_fanin=%d",
      num_nodes, num_sums, num_prods, num_maxes, num_indicators, num_parameters, num_edges,
      depth, max_fanin);
}

Circuit::Circuit(std::vector<int> cardinalities) : cardinalities_(std::move(cardinalities)) {
  for (int c : cardinalities_) require(c >= 1, "Circuit: cardinality must be >= 1");
}

NodeId Circuit::add_indicator(int var, int state) {
  require(var >= 0 && var < num_variables(), "add_indicator: bad variable id");
  require(state >= 0 && state < cardinalities_[static_cast<std::size_t>(var)],
          "add_indicator: bad state index");
  const auto key = std::make_pair(var, state);
  if (const auto it = indicator_cache_.find(key); it != indicator_cache_.end()) {
    return it->second;
  }
  Node n;
  n.kind = NodeKind::kIndicator;
  n.var = var;
  n.state = state;
  const NodeId id = push_node(std::move(n));
  indicator_cache_.emplace(key, id);
  return id;
}

NodeId Circuit::add_parameter(double value) {
  require(std::isfinite(value) && value >= 0.0,
          "add_parameter: parameters must be finite and non-negative");
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  if (const auto it = parameter_cache_.find(bits); it != parameter_cache_.end()) {
    return it->second;
  }
  Node n;
  n.kind = NodeKind::kParameter;
  n.value = value;
  const NodeId id = push_node(std::move(n));
  parameter_cache_.emplace(bits, id);
  return id;
}

NodeId Circuit::add_sum(std::vector<NodeId> children) {
  return add_operator(NodeKind::kSum, std::move(children));
}
NodeId Circuit::add_prod(std::vector<NodeId> children) {
  return add_operator(NodeKind::kProd, std::move(children));
}
NodeId Circuit::add_max(std::vector<NodeId> children) {
  return add_operator(NodeKind::kMax, std::move(children));
}

NodeId Circuit::add_operator(NodeKind kind, std::vector<NodeId> children) {
  require(!children.empty(), "add_operator: operator needs children");
  for (NodeId c : children) {
    require(c >= 0 && static_cast<std::size_t>(c) < nodes_.size(),
            "add_operator: child does not exist");
  }
  if (children.size() == 1) return children.front();

  // Structural hash over (kind, sorted children): SUM/PROD/MAX are
  // commutative, so child order does not affect identity.  The stored node
  // keeps the caller's order (it determines hardware wiring).
  std::vector<NodeId> sorted = children;
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t h = 1469598103934665603ull ^ static_cast<std::uint64_t>(kind);
  for (NodeId c : sorted) {
    h ^= static_cast<std::uint64_t>(c) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  if (const auto it = op_cache_.find(h); it != op_cache_.end()) {
    for (NodeId cand : it->second) {
      const Node& n = nodes_[static_cast<std::size_t>(cand)];
      std::vector<NodeId> cand_sorted = n.children;
      std::sort(cand_sorted.begin(), cand_sorted.end());
      if (n.kind == kind && cand_sorted == sorted) return cand;
    }
  }
  Node n;
  n.kind = kind;
  n.children = std::move(children);
  const NodeId id = push_node(std::move(n));
  op_cache_[h].push_back(id);
  return id;
}

NodeId Circuit::push_node(Node node) {
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Circuit::set_root(NodeId root) {
  require(root >= 0 && static_cast<std::size_t>(root) < nodes_.size(), "set_root: bad node id");
  root_ = root;
}

NodeId Circuit::find_indicator(int var, int state) const {
  const auto it = indicator_cache_.find(std::make_pair(var, state));
  return it == indicator_cache_.end() ? kInvalidNode : it->second;
}

bool Circuit::is_binary() const {
  return std::all_of(nodes_.begin(), nodes_.end(),
                     [](const Node& n) { return n.children.size() <= 2; });
}

CircuitStats Circuit::stats() const {
  CircuitStats s;
  s.num_nodes = nodes_.size();
  for (const Node& n : nodes_) {
    switch (n.kind) {
      case NodeKind::kSum: ++s.num_sums; break;
      case NodeKind::kProd: ++s.num_prods; break;
      case NodeKind::kMax: ++s.num_maxes; break;
      case NodeKind::kIndicator: ++s.num_indicators; break;
      case NodeKind::kParameter: ++s.num_parameters; break;
    }
    s.num_edges += n.children.size();
    s.max_fanin = std::max(s.max_fanin, static_cast<int>(n.children.size()));
  }
  const auto depths = node_depths();
  if (root_ != kInvalidNode) {
    // Depth of the computation the circuit denotes; dead arena nodes (never
    // feeding the root) do not count.
    s.depth = depths[static_cast<std::size_t>(root_)];
  } else {
    for (int d : depths) s.depth = std::max(s.depth, d);
  }
  return s;
}

std::vector<bool> Circuit::reachable_from_root() const {
  require(root_ != kInvalidNode, "reachable_from_root: circuit has no root");
  std::vector<bool> mask(nodes_.size(), false);
  mask[static_cast<std::size_t>(root_)] = true;
  // Children have smaller ids than parents: one reverse sweep suffices.
  for (std::size_t i = nodes_.size(); i > 0; --i) {
    if (!mask[i - 1]) continue;
    for (NodeId c : nodes_[i - 1].children) mask[static_cast<std::size_t>(c)] = true;
  }
  return mask;
}

std::vector<int> Circuit::node_depths() const {
  std::vector<int> depth(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.is_leaf()) continue;
    int d = 0;
    for (NodeId c : n.children) d = std::max(d, depth[static_cast<std::size_t>(c)]);
    depth[i] = d + 1;
  }
  return depth;
}

}  // namespace problp::ac
