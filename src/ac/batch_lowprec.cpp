#include "ac/batch_lowprec.hpp"

#include <algorithm>
#include <cstring>
#include <thread>
#include <type_traits>

#include "ac/tape_layout.hpp"

namespace problp::ac {

namespace {

/// The per-node leaf scatter both datapaths and the image composer share:
/// parameter rows from the quantised SoA cache, indicator rows at the
/// quantised 1.  Operator rows are left untouched (the sweep overwrites
/// them).  `row_of` remaps node ids to buffer rows; nullptr is the identity
/// layout.
template <class Slot>
void scatter_leaf_rows(const CircuitTape& tape, Slot* buf, std::size_t w,
                       const std::vector<Slot>& params, const Slot& one,
                       const std::int32_t* row_of) {
  const auto row = [row_of](NodeId id) {
    return row_of == nullptr ? static_cast<std::size_t>(id)
                             : static_cast<std::size_t>(row_of[static_cast<std::size_t>(id)]);
  };
  std::size_t pi = 0;
  for (const NodeId id : tape.param_ids()) {
    const std::size_t r = row(id);
    std::fill(buf + r * w, buf + r * w + w, params[pi++]);
  }
  for (const NodeId id : tape.indicator_ids()) {
    const std::size_t r = row(id);
    std::fill(buf + r * w, buf + r * w + w, one);
  }
}

}  // namespace

template <class RawOps>
LowPrecBatchEvaluator<RawOps>::LowPrecBatchEvaluator(const CircuitTape& tape, RawOps ops,
                                                     Options options)
    : tape_(&tape), ops_(std::move(ops)), options_(options) {
  // An unemulatable format (e.g. a fixed width > 62 bits, whose u128
  // product would silently wrap) must fail here, not corrupt a sweep.
  ops_.validate();
  require(options_.num_threads >= 0, "LowPrecBatchEvaluator: num_threads must be >= 0");
  if (options_.num_threads == 0) {
    options_.num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Resolve the kernel ISA on every configuration — even force_generic must
  // reject a bad PROBLP_SIMD or an unsupported forced level as loudly as
  // the exact engine does.
  level_ = options_.simd ? simd::dispatch_level(*options_.simd) : simd::dispatch_level();
  rows_ = tape.num_nodes();
  root_row_ = static_cast<std::size_t>(tape.root());
  if (!options_.force_generic) {
    if (options_.relayout) {
      const TapeLayout& layout = tape.layout();
      schedule_.emplace(KernelSchedule::compile(tape, layout));
      row_of_ = layout.slot_of().data();
      rows_ = layout.num_slots();
      root_row_ = static_cast<std::size_t>(row_of_[static_cast<std::size_t>(tape.root())]);
    } else {
      schedule_.emplace(KernelSchedule::compile(tape));
    }
  }
  if constexpr (RawOps::kNarrowCapable) {
    // The lane-parallel u32 datapath: narrow formats under the schedule
    // backend, unless the caller pins the u128 reference path.
    narrow_ = schedule_.has_value() && !options_.force_wide_raw && ops_.narrow_eligible();
    if (narrow_) {
      narrow_sweep_ = simd::fixed_sweep(level_);
      narrow_params_.max_raw = static_cast<std::uint32_t>(ops_.fmt.max_raw());
      narrow_params_.fraction_bits = ops_.fmt.fraction_bits;
      narrow_params_.half = ops_.fmt.fraction_bits > 0
                                ? std::uint32_t{1} << (ops_.fmt.fraction_bits - 1)
                                : 0;
      narrow_params_.mode = ops_.mode;
    }
  }
  if (options_.block == 0) {
    // Post-layout footprint: max-live rows under the relayout, so big
    // circuits with a small live frontier regain wide cache-fitting blocks.
    // The u32 lanes floor the block at 16: at 8 lanes the wide vectors run
    // half-filled and the narrow path loses to the u64-word arithmetic it
    // replaced.
    options_.block = auto_block_size(rows_, narrow_ ? sizeof(std::uint32_t) : sizeof(Raw),
                                     row_of_ != nullptr, narrow_ ? 16 : 8);
  }
  workspaces_.resize(static_cast<std::size_t>(options_.num_threads));
  // Same conversion set (and flag sink) as the per-query TapeEvaluator:
  // indicator constants plus every parameter, exactly once.
  one_ = ops_.quantize(1.0, param_flags_);
  zero_ = ops_.quantize(0.0, param_flags_);
  params_.reserve(tape.param_values().size());
  for (double v : tape.param_values()) params_.push_back(ops_.quantize(v, param_flags_));
  if constexpr (RawOps::kNarrowCapable) {
    if (narrow_) {
      // Narrowing is lossless: every quantised word is saturated at
      // max_raw() < 2^30.  The wide cache is dead once narrowed — release
      // it rather than carrying u128 words for the evaluator's lifetime.
      one_u32_ = static_cast<std::uint32_t>(one_);
      zero_u32_ = static_cast<std::uint32_t>(zero_);
      params_u32_.reserve(params_.size());
      for (const Raw& r : params_) params_u32_.push_back(static_cast<std::uint32_t>(r));
      params_.clear();
      params_.shrink_to_fit();
    }
  }
  init_leaf_image();
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::init_leaf_image() {
  // Precomposed leaf image: the quantised leaf cache laid out block-shaped
  // (parameters broadcast over their rows, indicators at the quantised 1,
  // operator rows zero — the sweep overwrites them), so per-block init is
  // one memcpy instead of a per-node scatter.  Elected only while value
  // buffer + image together stay inside the cache target: the memcpy's row
  // loop savings win in the cache-resident regime (+12% measured on a
  // 970-node naive-Bayes tape), but its extra read traffic and doubled
  // working set lose badly once the buffer alone is L2-sized (-21% on
  // ALARM/3.3k, whose image would add 848 KiB) — there the per-node scatter
  // writes only the leaf rows and reads nothing.
  const std::size_t elem = narrow_ ? sizeof(std::uint32_t) : sizeof(Raw);
  const CircuitTape& tape = *tape_;
  const std::size_t w = options_.block;
  // The election and the image are both sized to the post-layout rows, so
  // under the relayout more tapes clear the residency bar, not fewer.
  use_leaf_image_ = 2 * rows_ * w * elem <= kCacheTargetBytes;
  if (!use_leaf_image_) return;
  const auto compose = [&](auto& image, const auto& params, const auto& one) {
    using Slot = typename std::decay_t<decltype(image)>::value_type;
    image.assign(rows_ * w, Slot{});
    scatter_leaf_rows(tape, image.data(), w, params, one, row_of_);
  };
  if (narrow_) {
    compose(leaf_image_u32_, params_u32_, one_u32_);
  } else {
    compose(leaf_image_, params_, one_);
  }
}

template <class RawOps>
const std::vector<double>& LowPrecBatchEvaluator<RawOps>::evaluate(
    const std::vector<PartialAssignment>& batch) {
  return evaluate(batch.data(), batch.size());
}

template <class RawOps>
const std::vector<double>& LowPrecBatchEvaluator<RawOps>::evaluate(
    const PartialAssignment* batch, std::size_t count) {
  roots_.resize(count);
  flags_.resize(count);
  parallel_blocks(count, options_.block, options_.num_threads,
                  [this, batch](std::size_t begin, std::size_t end, std::size_t worker) {
                    evaluate_range(batch, begin, end, workspaces_[worker]);
                  });
  return roots_;
}

template <class RawOps>
lowprec::ArithFlags LowPrecBatchEvaluator<RawOps>::merged_flags() const {
  lowprec::ArithFlags merged;
  for (const lowprec::ArithFlags& f : flags_) merged.merge(f);
  return merged;
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::evaluate_range(const PartialAssignment* batch,
                                                   std::size_t begin, std::size_t end,
                                                   Workspace& ws) {
  if constexpr (RawOps::kNarrowCapable) {
    if (narrow_) {
      narrow_evaluate_range(batch, begin, end, ws);
      return;
    }
  }
  const CircuitTape& tape = *tape_;
  const std::size_t n = rows_;

  // Shared-evidence hoist, mirroring the exact engine: consecutive repeats
  // of one evidence template resolve once.
  const PartialAssignment* prev = nullptr;

  for (std::size_t b0 = begin; b0 < end; b0 += options_.block) {
    const std::size_t w = std::min(options_.block, end - b0);
    ws.buffer.resize(n * w);
    Raw* buf = ws.buffer.data();
    lowprec::ArithFlags* qflags = flags_.data() + b0;

    // Leaf rows: one memcpy of the precomposed image when elected
    // (parameters from the quantised SoA cache, indicators at the quantised
    // 1; operator rows are overwritten by the sweep).  A partial tail block
    // cannot reuse the image's full-block row stride and always takes the
    // per-node scatter.
    if (use_leaf_image_ && w == options_.block) {
      std::memcpy(buf, leaf_image_.data(), n * w * sizeof(Raw));
    } else {
      scatter_leaf_rows(tape, buf, w, params_, one_, row_of_);
    }
    // Each column's sticky flags start from the conversion flags the cached
    // leaves would re-raise — the same fold the per-query evaluator applies.
    for (std::size_t j = 0; j < w; ++j) {
      const PartialAssignment& a = batch[b0 + j];
      qflags[j] = param_flags_;
      if (prev == nullptr || !(a == *prev)) tape.resolve_observed(a, ws.observed);
      prev = &a;
      tape.zero_contradicted(ws.observed, buf, w, j, zero_, row_of_);
    }

    if (schedule_) {
      schedule_sweep(buf, qflags, w);
    } else {
      generic_sweep(buf, qflags, w, 0, static_cast<std::uint32_t>(tape.op_ids().size()));
    }

    const Raw* root_row = buf + root_row_ * w;
    for (std::size_t j = 0; j < w; ++j) roots_[b0 + j] = ops_.widen(root_row[j]);
  }
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::narrow_evaluate_range(const PartialAssignment* batch,
                                                          std::size_t begin, std::size_t end,
                                                          Workspace& ws) {
  if constexpr (RawOps::kNarrowCapable) {
    const CircuitTape& tape = *tape_;
    const std::size_t n = rows_;
    const PartialAssignment* prev = nullptr;

    for (std::size_t b0 = begin; b0 < end; b0 += options_.block) {
      const std::size_t w = std::min(options_.block, end - b0);
      ws.narrow_buffer.resize(n * w);
      ws.overflow.resize(w);
      std::uint32_t* buf = ws.narrow_buffer.data();
      std::uint32_t* ovf = ws.overflow.data();
      lowprec::ArithFlags* qflags = flags_.data() + b0;

      if (use_leaf_image_ && w == options_.block) {
        std::memcpy(buf, leaf_image_u32_.data(), n * w * sizeof(std::uint32_t));
      } else {
        scatter_leaf_rows(tape, buf, w, params_u32_, one_u32_, row_of_);
      }
      std::fill(ovf, ovf + w, 0);
      for (std::size_t j = 0; j < w; ++j) {
        const PartialAssignment& a = batch[b0 + j];
        qflags[j] = param_flags_;
        if (prev == nullptr || !(a == *prev)) tape.resolve_observed(a, ws.observed);
        prev = &a;
        tape.zero_contradicted(ws.observed, buf, w, j, zero_u32_, row_of_);
      }

      narrow_sweep_(*schedule_, buf, ovf, w, narrow_params_);

      // OR-reduce the per-lane sticky masks into the per-column flags —
      // overflow is the only flag fixed-point arithmetic raises past
      // quantisation, so this equals the wide path's inline flag folds.
      const std::uint32_t* root_row = buf + root_row_ * w;
      for (std::size_t j = 0; j < w; ++j) {
        qflags[j].overflow |= ovf[j] != 0;
        roots_[b0 + j] = lowprec::fx_raw_to_double(root_row[j], ops_.fmt);
      }
    }
  } else {
    (void)batch;
    (void)begin;
    (void)end;
    (void)ws;
  }
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::schedule_sweep(Raw* buf, lowprec::ArithFlags* qflags,
                                                   std::size_t w) {
  const KernelSchedule& schedule = *schedule_;
  const std::int32_t* out_ids = schedule.out().data();
  const std::int32_t* lhs_ids = schedule.lhs().data();
  const std::int32_t* rhs_ids = schedule.rhs().data();
  for (const KernelSegment& seg : schedule.segments()) {
    if (seg.kind == KernelSegment::Kind::kGeneric) {
      schedule_generic_run(buf, qflags, w, seg.begin, seg.end);
      continue;
    }
    // Fanin-2 runs: out = lhs OP rhs directly — no first-child copy, no CSR
    // offset lookups, and the kind branch hoisted out of the op loop.  The
    // per-lane fold order and flag sinks are exactly the generic fold's, so
    // values AND sticky flags stay bit-identical.
    const auto run = [&](auto&& op) {
      for (std::uint32_t i = seg.begin; i < seg.end; ++i) {
        Raw* __restrict o = buf + static_cast<std::size_t>(out_ids[i]) * w;
        const Raw* a = buf + static_cast<std::size_t>(lhs_ids[i]) * w;
        const Raw* b = buf + static_cast<std::size_t>(rhs_ids[i]) * w;
        for (std::size_t j = 0; j < w; ++j) o[j] = op(a[j], b[j], qflags[j]);
      }
    };
    switch (seg.kind) {
      case KernelSegment::Kind::kSum2:
        run([this](const Raw& a, const Raw& b, lowprec::ArithFlags& f) {
          return ops_.add(a, b, f);
        });
        break;
      case KernelSegment::Kind::kProd2:
        run([this](const Raw& a, const Raw& b, lowprec::ArithFlags& f) {
          return ops_.mul(a, b, f);
        });
        break;
      case KernelSegment::Kind::kMax2:
        run([this](const Raw& a, const Raw& b, lowprec::ArithFlags& f) {
          return ops_.max(a, b, f);
        });
        break;
      case KernelSegment::Kind::kGeneric:
        break;  // handled above
    }
  }
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::schedule_generic_run(Raw* buf, lowprec::ArithFlags* qflags,
                                                         std::size_t w, std::uint32_t gbegin,
                                                         std::uint32_t gend) {
  // Same CSR fold as generic_sweep, over the schedule's self-contained
  // generic arrays — rows already renamed through the layout's slot table.
  const KernelSchedule& schedule = *schedule_;
  const NodeKind* kinds = schedule.gen_kinds().data();
  const std::int32_t* gout = schedule.gen_out().data();
  const std::int32_t* offsets = schedule.gen_offsets().data();
  const std::int32_t* children = schedule.gen_children().data();

  for (std::uint32_t g = gbegin; g < gend; ++g) {
    const std::int32_t cb = offsets[g];
    const std::int32_t ce = offsets[g + 1];
    Raw* out = buf + static_cast<std::size_t>(gout[g]) * w;
    const Raw* first =
        buf + static_cast<std::size_t>(children[static_cast<std::size_t>(cb)]) * w;
    std::copy(first, first + w, out);
    switch (kinds[g]) {
      case NodeKind::kSum:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.add(out[j], rhs[j], qflags[j]);
        }
        break;
      case NodeKind::kProd:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.mul(out[j], rhs[j], qflags[j]);
        }
        break;
      case NodeKind::kMax:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.max(out[j], rhs[j], qflags[j]);
        }
        break;
      default:
        break;  // leaves never appear in the schedule
    }
  }
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::generic_sweep(Raw* buf, lowprec::ArithFlags* qflags,
                                                  std::size_t w, std::uint32_t pbegin,
                                                  std::uint32_t pend) {
  const CircuitTape& tape = *tape_;
  const auto& kinds = tape.kinds();
  const auto& offsets = tape.child_offsets();
  const auto& children = tape.children();
  const auto& ops = tape.op_ids();

  for (std::uint32_t p = pbegin; p < pend; ++p) {
    const std::size_t i = static_cast<std::size_t>(ops[p]);
    const std::int32_t cb = offsets[i];
    const std::int32_t ce = offsets[i + 1];
    Raw* out = buf + i * w;
    const Raw* first =
        buf + static_cast<std::size_t>(children[static_cast<std::size_t>(cb)]) * w;
    std::copy(first, first + w, out);
    switch (kinds[i]) {
      case NodeKind::kSum:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.add(out[j], rhs[j], qflags[j]);
        }
        break;
      case NodeKind::kProd:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.mul(out[j], rhs[j], qflags[j]);
        }
        break;
      case NodeKind::kMax:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.max(out[j], rhs[j], qflags[j]);
        }
        break;
      default:
        break;  // leaves never appear in op_ids
    }
  }
}

template class LowPrecBatchEvaluator<FixedRawOps>;
template class LowPrecBatchEvaluator<FloatRawOps>;

}  // namespace problp::ac
