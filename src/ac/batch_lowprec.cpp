#include "ac/batch_lowprec.hpp"

#include <algorithm>
#include <thread>

namespace problp::ac {

template <class RawOps>
LowPrecBatchEvaluator<RawOps>::LowPrecBatchEvaluator(const CircuitTape& tape, RawOps ops,
                                                     Options options)
    : tape_(&tape), ops_(std::move(ops)), options_(options) {
  require(options_.num_threads >= 0, "LowPrecBatchEvaluator: num_threads must be >= 0");
  if (options_.num_threads == 0) {
    options_.num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (options_.block == 0) {
    options_.block = auto_block_size(tape.num_nodes(), sizeof(Raw));
  }
  // The raw-word kernels are lane-serial, so no ISA table is consulted here —
  // but resolve the dispatch anyway: a bad PROBLP_SIMD or unsupported forced
  // level must fail as loudly on this engine as on the exact one.
  if (options_.simd) {
    simd::dispatch_level(*options_.simd);
  } else {
    simd::dispatch_level();
  }
  if (!options_.force_generic) schedule_.emplace(KernelSchedule::compile(tape));
  workspaces_.resize(static_cast<std::size_t>(options_.num_threads));
  // Same conversion set (and flag sink) as the per-query TapeEvaluator:
  // indicator constants plus every parameter, exactly once.
  one_ = ops_.quantize(1.0, param_flags_);
  zero_ = ops_.quantize(0.0, param_flags_);
  params_.reserve(tape.param_values().size());
  for (double v : tape.param_values()) params_.push_back(ops_.quantize(v, param_flags_));
}

template <class RawOps>
const std::vector<double>& LowPrecBatchEvaluator<RawOps>::evaluate(
    const std::vector<PartialAssignment>& batch) {
  return evaluate(batch.data(), batch.size());
}

template <class RawOps>
const std::vector<double>& LowPrecBatchEvaluator<RawOps>::evaluate(
    const PartialAssignment* batch, std::size_t count) {
  roots_.resize(count);
  flags_.resize(count);
  parallel_blocks(count, options_.block, options_.num_threads,
                  [this, batch](std::size_t begin, std::size_t end, std::size_t worker) {
                    evaluate_range(batch, begin, end, workspaces_[worker]);
                  });
  return roots_;
}

template <class RawOps>
lowprec::ArithFlags LowPrecBatchEvaluator<RawOps>::merged_flags() const {
  lowprec::ArithFlags merged;
  for (const lowprec::ArithFlags& f : flags_) merged.merge(f);
  return merged;
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::evaluate_range(const PartialAssignment* batch,
                                                   std::size_t begin, std::size_t end,
                                                   Workspace& ws) {
  const CircuitTape& tape = *tape_;
  const std::size_t n = tape.num_nodes();

  // Shared-evidence hoist, mirroring the exact engine: consecutive repeats
  // of one evidence template resolve once.
  const PartialAssignment* prev = nullptr;

  for (std::size_t b0 = begin; b0 < end; b0 += options_.block) {
    const std::size_t w = std::min(options_.block, end - b0);
    ws.buffer.resize(n * w);
    Raw* buf = ws.buffer.data();
    lowprec::ArithFlags* qflags = flags_.data() + b0;

    // Leaf rows: parameters from the quantised SoA cache, indicators at the
    // quantised 1; operator rows are overwritten by the sweep.  Each column's
    // sticky flags start from the conversion flags the cached leaves would
    // re-raise — the same fold the per-query evaluator applies.
    {
      std::size_t pi = 0;
      for (const NodeId id : tape.param_ids()) {
        const std::size_t i = static_cast<std::size_t>(id);
        std::fill(buf + i * w, buf + i * w + w, params_[pi++]);
      }
    }
    for (const NodeId id : tape.indicator_ids()) {
      const std::size_t i = static_cast<std::size_t>(id);
      std::fill(buf + i * w, buf + i * w + w, one_);
    }
    for (std::size_t j = 0; j < w; ++j) {
      const PartialAssignment& a = batch[b0 + j];
      qflags[j] = param_flags_;
      if (prev == nullptr || !(a == *prev)) tape.resolve_observed(a, ws.observed);
      prev = &a;
      tape.zero_contradicted(ws.observed, buf, w, j, zero_);
    }

    if (schedule_) {
      schedule_sweep(buf, qflags, w);
    } else {
      generic_sweep(buf, qflags, w, 0, static_cast<std::uint32_t>(tape.op_ids().size()));
    }

    const Raw* root_row = buf + static_cast<std::size_t>(tape.root()) * w;
    for (std::size_t j = 0; j < w; ++j) roots_[b0 + j] = ops_.widen(root_row[j]);
  }
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::schedule_sweep(Raw* buf, lowprec::ArithFlags* qflags,
                                                   std::size_t w) {
  const KernelSchedule& schedule = *schedule_;
  const std::int32_t* out_ids = schedule.out().data();
  const std::int32_t* lhs_ids = schedule.lhs().data();
  const std::int32_t* rhs_ids = schedule.rhs().data();
  for (const KernelSegment& seg : schedule.segments()) {
    if (seg.kind == KernelSegment::Kind::kGeneric) {
      generic_sweep(buf, qflags, w, seg.begin, seg.end);
      continue;
    }
    // Fanin-2 runs: out = lhs OP rhs directly — no first-child copy, no CSR
    // offset lookups, and the kind branch hoisted out of the op loop.  The
    // per-lane fold order and flag sinks are exactly the generic fold's, so
    // values AND sticky flags stay bit-identical.
    const auto run = [&](auto&& op) {
      for (std::uint32_t i = seg.begin; i < seg.end; ++i) {
        Raw* __restrict o = buf + static_cast<std::size_t>(out_ids[i]) * w;
        const Raw* a = buf + static_cast<std::size_t>(lhs_ids[i]) * w;
        const Raw* b = buf + static_cast<std::size_t>(rhs_ids[i]) * w;
        for (std::size_t j = 0; j < w; ++j) o[j] = op(a[j], b[j], qflags[j]);
      }
    };
    switch (seg.kind) {
      case KernelSegment::Kind::kSum2:
        run([this](const Raw& a, const Raw& b, lowprec::ArithFlags& f) {
          return ops_.add(a, b, f);
        });
        break;
      case KernelSegment::Kind::kProd2:
        run([this](const Raw& a, const Raw& b, lowprec::ArithFlags& f) {
          return ops_.mul(a, b, f);
        });
        break;
      case KernelSegment::Kind::kMax2:
        run([this](const Raw& a, const Raw& b, lowprec::ArithFlags& f) {
          return ops_.max(a, b, f);
        });
        break;
      case KernelSegment::Kind::kGeneric:
        break;  // handled above
    }
  }
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::generic_sweep(Raw* buf, lowprec::ArithFlags* qflags,
                                                  std::size_t w, std::uint32_t pbegin,
                                                  std::uint32_t pend) {
  const CircuitTape& tape = *tape_;
  const auto& kinds = tape.kinds();
  const auto& offsets = tape.child_offsets();
  const auto& children = tape.children();
  const auto& ops = tape.op_ids();

  for (std::uint32_t p = pbegin; p < pend; ++p) {
    const std::size_t i = static_cast<std::size_t>(ops[p]);
    const std::int32_t cb = offsets[i];
    const std::int32_t ce = offsets[i + 1];
    Raw* out = buf + i * w;
    const Raw* first =
        buf + static_cast<std::size_t>(children[static_cast<std::size_t>(cb)]) * w;
    std::copy(first, first + w, out);
    switch (kinds[i]) {
      case NodeKind::kSum:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.add(out[j], rhs[j], qflags[j]);
        }
        break;
      case NodeKind::kProd:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.mul(out[j], rhs[j], qflags[j]);
        }
        break;
      case NodeKind::kMax:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.max(out[j], rhs[j], qflags[j]);
        }
        break;
      default:
        break;  // leaves never appear in op_ids
    }
  }
}

template class LowPrecBatchEvaluator<FixedRawOps>;
template class LowPrecBatchEvaluator<FloatRawOps>;

}  // namespace problp::ac
