#include "ac/batch_lowprec.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <type_traits>

#include "ac/leaf_cache.hpp"
#include "ac/tape_layout.hpp"
#include "util/fault_injection.hpp"

namespace problp::ac {

void FloatRawOps::validate() const {
  fmt.validate();
  // Kernel-envelope re-assertions, independent of FloatFormat::validate()'s
  // caps: the wide kernels take the exact significand product in 128-bit
  // intermediates (2M+2 bits) and every datapath folds unbiased exponent
  // sums in i32 (|exp| <= 2^(E-1), so E <= 30 keeps ea+eb far from wrap).
  // A format outside either envelope is unemulatable on this engine; fail
  // here with the engine's own message rather than inheriting the format
  // cap silently.
  require(2 * fmt.mantissa_bits + 2 <= 128,
          "FloatRawOps: mantissa_bits " + std::to_string(fmt.mantissa_bits) +
              " needs a significand product wider than 128 bits");
  require(fmt.exponent_bits <= 30,
          "FloatRawOps: exponent_bits " + std::to_string(fmt.exponent_bits) +
              " would overflow i32 exponent arithmetic");
}

namespace {

/// The per-node leaf scatter both datapaths and the image composer share:
/// parameter rows from the quantised SoA cache, indicator rows at the
/// quantised 1.  Operator rows are left untouched (the sweep overwrites
/// them).  `row_of` remaps node ids to buffer rows; nullptr is the identity
/// layout.
template <class Slot>
void scatter_leaf_rows(const CircuitTape& tape, Slot* buf, std::size_t w,
                       const std::vector<Slot>& params, const Slot& one,
                       const std::int32_t* row_of) {
  const auto row = [row_of](NodeId id) {
    return row_of == nullptr ? static_cast<std::size_t>(id)
                             : static_cast<std::size_t>(row_of[static_cast<std::size_t>(id)]);
  };
  std::size_t pi = 0;
  for (const NodeId id : tape.param_ids()) {
    const std::size_t r = row(id);
    std::fill(buf + r * w, buf + r * w + w, params[pi++]);
  }
  for (const NodeId id : tape.indicator_ids()) {
    const std::size_t r = row(id);
    std::fill(buf + r * w, buf + r * w + w, one);
  }
}

/// The decomposed-float twin of scatter_leaf_rows: each leaf lands in a
/// parallel pair of exponent / significand rows.
template <class Sig>
void scatter_leaf_rows_split(const CircuitTape& tape, std::int32_t* exps, Sig* sigs,
                             std::size_t w, const std::vector<std::int32_t>& pexps,
                             const std::vector<Sig>& psigs, std::int32_t one_exp,
                             Sig one_sig, const std::int32_t* row_of) {
  const auto row = [row_of](NodeId id) {
    return row_of == nullptr ? static_cast<std::size_t>(id)
                             : static_cast<std::size_t>(row_of[static_cast<std::size_t>(id)]);
  };
  std::size_t pi = 0;
  for (const NodeId id : tape.param_ids()) {
    const std::size_t r = row(id);
    std::fill(exps + r * w, exps + r * w + w, pexps[pi]);
    std::fill(sigs + r * w, sigs + r * w + w, psigs[pi]);
    ++pi;
  }
  for (const NodeId id : tape.indicator_ids()) {
    const std::size_t r = row(id);
    std::fill(exps + r * w, exps + r * w + w, one_exp);
    std::fill(sigs + r * w, sigs + r * w + w, one_sig);
  }
}

}  // namespace

template <class RawOps>
LowPrecBatchEvaluator<RawOps>::LowPrecBatchEvaluator(const CircuitTape& tape, RawOps ops,
                                                     Options options)
    : tape_(&tape), ops_(std::move(ops)), options_(options) {
  // An unemulatable format (e.g. a fixed width > 62 bits, whose u128
  // product would silently wrap) must fail here, not corrupt a sweep.
  ops_.validate();
  require(options_.num_threads >= 0, "LowPrecBatchEvaluator: num_threads must be >= 0");
  if (options_.num_threads == 0) {
    options_.num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Resolve the kernel ISA on every configuration — even force_generic must
  // reject a bad PROBLP_SIMD or an unsupported forced level as loudly as
  // the exact engine does.
  level_ = options_.simd ? simd::dispatch_level(*options_.simd) : simd::dispatch_level();
  rows_ = tape.num_nodes();
  root_row_ = static_cast<std::size_t>(tape.root());
  if (!options_.force_generic) {
    if (options_.relayout) {
      const TapeLayout& layout = tape.layout();
      // Slot-space schedule precompiled once per tape; shared, not rebuilt.
      schedule_ = tape.layout_schedule();
      row_of_ = layout.slot_of().data();
      rows_ = layout.num_slots();
      root_row_ = static_cast<std::size_t>(row_of_[static_cast<std::size_t>(tape.root())]);
    } else {
      schedule_ = std::make_shared<const KernelSchedule>(KernelSchedule::compile(tape));
    }
  }
  if constexpr (RawOps::kNarrowCapable) {
    // The lane-parallel u32 datapath: narrow formats under the schedule
    // backend, unless the caller pins the u128 reference path.
    narrow_ = schedule_ != nullptr && !options_.force_wide_raw && ops_.narrow_eligible();
    if (narrow_) {
      narrow_sweep_ = simd::fixed_sweep(level_);
      narrow_params_.max_raw = static_cast<std::uint32_t>(ops_.fmt.max_raw());
      narrow_params_.fraction_bits = ops_.fmt.fraction_bits;
      narrow_params_.half = ops_.fmt.fraction_bits > 0
                                ? std::uint32_t{1} << (ops_.fmt.fraction_bits - 1)
                                : 0;
      narrow_params_.mode = ops_.mode;
    }
  }
  if constexpr (RawOps::kLaneCapable) {
    // The lane-parallel decomposed float datapath: lane-eligible mantissas
    // under the schedule backend, unless the caller pins the interleaved
    // FloatRaw reference path.
    if (schedule_ != nullptr && !options_.force_wide_raw) lane_bits_ = ops_.lane_sig_bits();
    if (lane_bits_ == 32) {
      float_sweep32_ = simd::float_sweep32(level_);
    } else if (lane_bits_ == 64) {
      float_sweep64_ = simd::float_sweep64(level_);
    }
    if (lane_bits_ != 0) {
      float_params_.mantissa_bits = ops_.fmt.mantissa_bits;
      float_params_.min_exp = ops_.fmt.min_exponent();
      float_params_.max_exp = ops_.fmt.max_exponent();
      float_params_.mode = ops_.mode;
    }
  }
  if (options_.block == 0) {
    // Post-layout footprint: max-live rows under the relayout, so big
    // circuits with a small live frontier regain wide cache-fitting blocks.
    // The u32 lanes floor the block at 16: at 8 lanes the wide vectors run
    // half-filled and the narrow path loses to the u64-word arithmetic it
    // replaced.  The decomposed float rows count one i32 exponent plus one
    // significand lane per slot, with the same 16-lane floor on the u32-sig
    // path.
    std::size_t elem = narrow_ ? sizeof(std::uint32_t) : sizeof(Raw);
    std::size_t min_block = narrow_ ? 16 : 8;
    if constexpr (RawOps::kLaneCapable) {
      if (lane_bits_ != 0) {
        elem = sizeof(std::int32_t) + static_cast<std::size_t>(lane_bits_) / 8;
        min_block = lane_bits_ == 32 ? 16 : 8;
      }
    }
    options_.block = auto_block_size(rows_, elem, row_of_ != nullptr, min_block);
  }
  workspaces_.resize(static_cast<std::size_t>(options_.num_threads));
  // Same conversion set (and flag sink) as the per-query TapeEvaluator:
  // indicator constants plus every parameter, exactly once.  A matching
  // pre-quantised leaf cache attached to the tape (restored from a model
  // artifact, ac/leaf_cache.hpp) is adopted verbatim — same words, same
  // sticky conversion flags — skipping the per-parameter emulation.
  const LeafCacheSet* caches = tape.leaf_caches().get();
  bool adopted = false;
  if constexpr (std::is_same_v<Raw, u128>) {
    const FixedLeafCache* hit = caches != nullptr ? caches->find(ops_.fmt, ops_.mode) : nullptr;
    if (hit != nullptr && hit->params.size() == tape.param_values().size()) {
      param_flags_.merge(hit->param_flags);
      one_ = hit->one;
      zero_ = hit->zero;
      params_.assign(hit->params.begin(), hit->params.end());
      adopted = true;
    }
  } else {
    const FloatLeafCache* hit = caches != nullptr ? caches->find(ops_.fmt, ops_.mode) : nullptr;
    if (hit != nullptr && hit->params_exp.size() == tape.param_values().size()) {
      param_flags_.merge(hit->param_flags);
      one_ = Raw{hit->one_exp, hit->one_sig};
      zero_ = Raw{hit->zero_exp, hit->zero_sig};
      params_.reserve(hit->params_exp.size());
      for (std::size_t i = 0; i < hit->params_exp.size(); ++i) {
        params_.push_back(Raw{hit->params_exp[i], hit->params_sig[i]});
      }
      adopted = true;
    }
  }
  if (!adopted) {
    one_ = ops_.quantize(1.0, param_flags_);
    zero_ = ops_.quantize(0.0, param_flags_);
    params_.reserve(tape.param_values().size());
    for (double v : tape.param_values()) params_.push_back(ops_.quantize(v, param_flags_));
  }
  if constexpr (RawOps::kNarrowCapable) {
    if (narrow_) {
      // Narrowing is lossless: every quantised word is saturated at
      // max_raw() < 2^30.  The wide cache is dead once narrowed — release
      // it rather than carrying u128 words for the evaluator's lifetime.
      one_u32_ = static_cast<std::uint32_t>(one_);
      zero_u32_ = static_cast<std::uint32_t>(zero_);
      params_u32_.reserve(params_.size());
      for (const Raw& r : params_) params_u32_.push_back(static_cast<std::uint32_t>(r));
      params_.clear();
      params_.shrink_to_fit();
    }
  }
  if constexpr (RawOps::kLaneCapable) {
    if (lane_bits_ != 0) {
      // Decomposition is exact: each quantised (exp, sig) pair splits into
      // parallel exponent / significand caches (sig < 2^(M+1) fits the lane
      // type by lane eligibility).  The quantised zero is sig == 0 on every
      // path, so only `one` needs decomposed constants.  The interleaved
      // cache is dead once split — release it.
      one_exp_ = one_.exp;
      params_exp_.reserve(params_.size());
      if (lane_bits_ == 32) {
        one_sig32_ = static_cast<std::uint32_t>(one_.sig);
        params_sig32_.reserve(params_.size());
        for (const Raw& r : params_) {
          params_exp_.push_back(r.exp);
          params_sig32_.push_back(static_cast<std::uint32_t>(r.sig));
        }
      } else {
        one_sig64_ = one_.sig;
        params_sig64_.reserve(params_.size());
        for (const Raw& r : params_) {
          params_exp_.push_back(r.exp);
          params_sig64_.push_back(r.sig);
        }
      }
      params_.clear();
      params_.shrink_to_fit();
    }
  }
  init_leaf_image();
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::init_leaf_image() {
  // Precomposed leaf image: the quantised leaf cache laid out block-shaped
  // (parameters broadcast over their rows, indicators at the quantised 1,
  // operator rows zero — the sweep overwrites them), so per-block init is
  // one memcpy instead of a per-node scatter.  Elected only while value
  // buffer + image together stay inside the cache target: the memcpy's row
  // loop savings win in the cache-resident regime (+12% measured on a
  // 970-node naive-Bayes tape), but its extra read traffic and doubled
  // working set lose badly once the buffer alone is L2-sized (-21% on
  // ALARM/3.3k, whose image would add 848 KiB) — there the per-node scatter
  // writes only the leaf rows and reads nothing.
  std::size_t elem = narrow_ ? sizeof(std::uint32_t) : sizeof(Raw);
  if constexpr (RawOps::kLaneCapable) {
    if (lane_bits_ != 0) {
      elem = sizeof(std::int32_t) + static_cast<std::size_t>(lane_bits_) / 8;
    }
  }
  const CircuitTape& tape = *tape_;
  const std::size_t w = options_.block;
  // The election and the image are both sized to the post-layout rows, so
  // under the relayout more tapes clear the residency bar, not fewer.
  use_leaf_image_ = 2 * rows_ * w * elem <= kCacheTargetBytes;
  if (!use_leaf_image_) return;
  if constexpr (RawOps::kLaneCapable) {
    if (lane_bits_ != 0) {
      // Two-row decomposed image: parallel exponent / significand planes
      // the lane path restores with two memcpys.
      leaf_image_exp_.assign(rows_ * w, 0);
      if (lane_bits_ == 32) {
        leaf_image_sig32_.assign(rows_ * w, 0);
        scatter_leaf_rows_split(tape, leaf_image_exp_.data(), leaf_image_sig32_.data(), w,
                                params_exp_, params_sig32_, one_exp_, one_sig32_, row_of_);
      } else {
        leaf_image_sig64_.assign(rows_ * w, 0);
        scatter_leaf_rows_split(tape, leaf_image_exp_.data(), leaf_image_sig64_.data(), w,
                                params_exp_, params_sig64_, one_exp_, one_sig64_, row_of_);
      }
      return;
    }
  }
  const auto compose = [&](auto& image, const auto& params, const auto& one) {
    using Slot = typename std::decay_t<decltype(image)>::value_type;
    image.assign(rows_ * w, Slot{});
    scatter_leaf_rows(tape, image.data(), w, params, one, row_of_);
  };
  if (narrow_) {
    compose(leaf_image_u32_, params_u32_, one_u32_);
  } else {
    compose(leaf_image_, params_, one_);
  }
}

template <class RawOps>
const std::vector<double>& LowPrecBatchEvaluator<RawOps>::evaluate(
    const std::vector<PartialAssignment>& batch) {
  return evaluate(batch.data(), batch.size());
}

template <class RawOps>
const std::vector<double>& LowPrecBatchEvaluator<RawOps>::evaluate(
    const PartialAssignment* batch, std::size_t count) {
  roots_.resize(count);
  flags_.resize(count);
  parallel_blocks(count, options_.block, options_.num_threads,
                  [this, batch](std::size_t begin, std::size_t end, std::size_t worker) {
                    // Fault site: a worker thread throws a foreign (non-
                    // problp) exception; parallel_blocks must surface it on
                    // the caller as problp::Error, never std::terminate.
                    if (util::fault_point("batch.worker")) {
                      throw std::runtime_error("injected worker fault");
                    }
                    evaluate_range(batch, begin, end, workspaces_[worker]);
                  });
  return roots_;
}

template <class RawOps>
lowprec::ArithFlags LowPrecBatchEvaluator<RawOps>::merged_flags() const {
  lowprec::ArithFlags merged;
  for (const lowprec::ArithFlags& f : flags_) merged.merge(f);
  return merged;
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::evaluate_range(const PartialAssignment* batch,
                                                   std::size_t begin, std::size_t end,
                                                   Workspace& ws) {
  if constexpr (RawOps::kNarrowCapable) {
    if (narrow_) {
      narrow_evaluate_range(batch, begin, end, ws);
      return;
    }
  }
  if constexpr (RawOps::kLaneCapable) {
    if (lane_bits_ == 32) {
      lane_evaluate_range<std::uint32_t>(batch, begin, end, ws);
      return;
    }
    if (lane_bits_ == 64) {
      lane_evaluate_range<std::uint64_t>(batch, begin, end, ws);
      return;
    }
  }
  const CircuitTape& tape = *tape_;
  const std::size_t n = rows_;

  // Shared-evidence hoist, mirroring the exact engine: consecutive repeats
  // of one evidence template resolve once.
  const PartialAssignment* prev = nullptr;

  for (std::size_t b0 = begin; b0 < end; b0 += options_.block) {
    const std::size_t w = std::min(options_.block, end - b0);
    ws.buffer.resize(n * w);
    Raw* buf = ws.buffer.data();
    lowprec::ArithFlags* qflags = flags_.data() + b0;

    // Whole-block evidence template (see BatchEvaluator::evaluate_range):
    // a uniform block zeroes whole rows once, and a repeat of the last
    // composed template restores the block with one memcpy.
    bool uniform = true;
    for (std::size_t j = 1; j < w && uniform; ++j) {
      uniform = batch[b0 + j] == batch[b0];
    }
    if (uniform && ws.template_valid && ws.template_w == w &&
        ws.template_key == batch[b0]) {
      std::memcpy(buf, ws.template_image.data(), n * w * sizeof(Raw));
      prev = nullptr;
    } else {
      // Leaf rows: one memcpy of the precomposed image when elected
      // (parameters from the quantised SoA cache, indicators at the
      // quantised 1; operator rows are overwritten by the sweep).  A partial
      // tail block cannot reuse the image's full-block row stride and always
      // takes the per-node scatter.
      if (use_leaf_image_ && w == options_.block) {
        std::memcpy(buf, leaf_image_.data(), n * w * sizeof(Raw));
      } else {
        scatter_leaf_rows(tape, buf, w, params_, one_, row_of_);
      }
      if (uniform) {
        const PartialAssignment& a = batch[b0];
        if (prev == nullptr || !(a == *prev)) tape.resolve_observed(a, ws.observed);
        prev = &batch[b0 + w - 1];
        tape.zero_contradicted_rows(ws.observed, buf, w, zero_, row_of_);
        // The composed template doubles the worker's block footprint just
        // like the leaf image — reuse its residency election.
        if (use_leaf_image_ && w == options_.block) {
          ws.template_image.assign(buf, buf + n * w);
          ws.template_key = a;
          ws.template_w = w;
          ws.template_valid = true;
        }
      } else {
        for (std::size_t j = 0; j < w; ++j) {
          const PartialAssignment& a = batch[b0 + j];
          if (prev == nullptr || !(a == *prev)) tape.resolve_observed(a, ws.observed);
          prev = &a;
          tape.zero_contradicted(ws.observed, buf, w, j, zero_, row_of_);
        }
      }
    }
    // Each column's sticky flags start from the conversion flags the cached
    // leaves would re-raise — the same fold the per-query evaluator applies.
    for (std::size_t j = 0; j < w; ++j) qflags[j] = param_flags_;

    if (schedule_) {
      schedule_sweep(buf, qflags, w);
    } else {
      generic_sweep(buf, qflags, w, 0, static_cast<std::uint32_t>(tape.op_ids().size()));
    }

    const Raw* root_row = buf + root_row_ * w;
    for (std::size_t j = 0; j < w; ++j) roots_[b0 + j] = ops_.widen(root_row[j]);
  }
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::narrow_evaluate_range(const PartialAssignment* batch,
                                                          std::size_t begin, std::size_t end,
                                                          Workspace& ws) {
  if constexpr (RawOps::kNarrowCapable) {
    const CircuitTape& tape = *tape_;
    const std::size_t n = rows_;
    const PartialAssignment* prev = nullptr;

    for (std::size_t b0 = begin; b0 < end; b0 += options_.block) {
      const std::size_t w = std::min(options_.block, end - b0);
      ws.narrow_buffer.resize(n * w);
      ws.overflow.resize(w);
      std::uint32_t* buf = ws.narrow_buffer.data();
      std::uint32_t* ovf = ws.overflow.data();
      lowprec::ArithFlags* qflags = flags_.data() + b0;

      // Whole-block evidence template, as on the wide path.
      bool uniform = true;
      for (std::size_t j = 1; j < w && uniform; ++j) {
        uniform = batch[b0 + j] == batch[b0];
      }
      if (uniform && ws.template_valid && ws.template_w == w &&
          ws.template_key == batch[b0]) {
        std::memcpy(buf, ws.template_image_u32.data(), n * w * sizeof(std::uint32_t));
        prev = nullptr;
      } else {
        if (use_leaf_image_ && w == options_.block) {
          std::memcpy(buf, leaf_image_u32_.data(), n * w * sizeof(std::uint32_t));
        } else {
          scatter_leaf_rows(tape, buf, w, params_u32_, one_u32_, row_of_);
        }
        if (uniform) {
          const PartialAssignment& a = batch[b0];
          if (prev == nullptr || !(a == *prev)) tape.resolve_observed(a, ws.observed);
          prev = &batch[b0 + w - 1];
          tape.zero_contradicted_rows(ws.observed, buf, w, zero_u32_, row_of_);
          if (use_leaf_image_ && w == options_.block) {
            ws.template_image_u32.assign(buf, buf + n * w);
            ws.template_key = a;
            ws.template_w = w;
            ws.template_valid = true;
          }
        } else {
          for (std::size_t j = 0; j < w; ++j) {
            const PartialAssignment& a = batch[b0 + j];
            if (prev == nullptr || !(a == *prev)) tape.resolve_observed(a, ws.observed);
            prev = &a;
            tape.zero_contradicted(ws.observed, buf, w, j, zero_u32_, row_of_);
          }
        }
      }
      std::fill(ovf, ovf + w, 0);
      for (std::size_t j = 0; j < w; ++j) qflags[j] = param_flags_;

      narrow_sweep_(*schedule_, buf, ovf, w, narrow_params_);

      // OR-reduce the per-lane sticky masks into the per-column flags —
      // overflow is the only flag fixed-point arithmetic raises past
      // quantisation, so this equals the wide path's inline flag folds.
      const std::uint32_t* root_row = buf + root_row_ * w;
      for (std::size_t j = 0; j < w; ++j) {
        qflags[j].overflow |= ovf[j] != 0;
        roots_[b0 + j] = lowprec::fx_raw_to_double(root_row[j], ops_.fmt);
      }
    }
  } else {
    (void)batch;
    (void)begin;
    (void)end;
    (void)ws;
  }
}

template <class RawOps>
template <class Sig>
void LowPrecBatchEvaluator<RawOps>::lane_evaluate_range(const PartialAssignment* batch,
                                                        std::size_t begin, std::size_t end,
                                                        Workspace& ws) {
  if constexpr (RawOps::kLaneCapable) {
    constexpr bool kU32 = std::is_same_v<Sig, std::uint32_t>;
    const CircuitTape& tape = *tape_;
    const std::size_t n = rows_;
    // One set of per-width buffers / caches per instantiation; the other
    // width's members stay empty for this evaluator's lifetime.
    auto& sig_buffer = [&]() -> auto& {
      if constexpr (kU32) {
        return ws.sig32_buffer;
      } else {
        return ws.sig64_buffer;
      }
    }();
    auto& ovf_buffer = [&]() -> auto& {
      if constexpr (kU32) {
        return ws.overflow;
      } else {
        return ws.overflow64;
      }
    }();
    auto& und_buffer = [&]() -> auto& {
      if constexpr (kU32) {
        return ws.underflow;
      } else {
        return ws.underflow64;
      }
    }();
    auto& template_sigs = [&]() -> auto& {
      if constexpr (kU32) {
        return ws.template_image_sig32;
      } else {
        return ws.template_image_sig64;
      }
    }();
    const auto& psigs = [&]() -> const auto& {
      if constexpr (kU32) {
        return params_sig32_;
      } else {
        return params_sig64_;
      }
    }();
    const auto& image_sigs = [&]() -> const auto& {
      if constexpr (kU32) {
        return leaf_image_sig32_;
      } else {
        return leaf_image_sig64_;
      }
    }();
    Sig one_sig;
    if constexpr (kU32) {
      one_sig = one_sig32_;
    } else {
      one_sig = one_sig64_;
    }

    const PartialAssignment* prev = nullptr;

    for (std::size_t b0 = begin; b0 < end; b0 += options_.block) {
      const std::size_t w = std::min(options_.block, end - b0);
      ws.exp_buffer.resize(n * w);
      sig_buffer.resize(n * w);
      ovf_buffer.resize(w);
      und_buffer.resize(w);
      std::int32_t* exps = ws.exp_buffer.data();
      Sig* sigs = sig_buffer.data();
      Sig* ovf = ovf_buffer.data();
      Sig* und = und_buffer.data();
      lowprec::ArithFlags* qflags = flags_.data() + b0;

      // Whole-block evidence template, as on the wide path — both planes
      // restore by memcpy on a template repeat.
      bool uniform = true;
      for (std::size_t j = 1; j < w && uniform; ++j) {
        uniform = batch[b0 + j] == batch[b0];
      }
      if (uniform && ws.template_valid && ws.template_w == w &&
          ws.template_key == batch[b0]) {
        std::memcpy(exps, ws.template_image_exp.data(), n * w * sizeof(std::int32_t));
        std::memcpy(sigs, template_sigs.data(), n * w * sizeof(Sig));
        prev = nullptr;
      } else {
        if (use_leaf_image_ && w == options_.block) {
          std::memcpy(exps, leaf_image_exp_.data(), n * w * sizeof(std::int32_t));
          std::memcpy(sigs, image_sigs.data(), n * w * sizeof(Sig));
        } else {
          scatter_leaf_rows_split(tape, exps, sigs, w, params_exp_, psigs, one_exp_, one_sig,
                                  row_of_);
        }
        // Evidence zeroing touches only the significand plane: sig == 0 IS
        // the encoded zero, and the kernels never read the exponent of a
        // zero lane.
        if (uniform) {
          const PartialAssignment& a = batch[b0];
          if (prev == nullptr || !(a == *prev)) tape.resolve_observed(a, ws.observed);
          prev = &batch[b0 + w - 1];
          tape.zero_contradicted_rows(ws.observed, sigs, w, Sig{0}, row_of_);
          if (use_leaf_image_ && w == options_.block) {
            ws.template_image_exp.assign(exps, exps + n * w);
            template_sigs.assign(sigs, sigs + n * w);
            ws.template_key = a;
            ws.template_w = w;
            ws.template_valid = true;
          }
        } else {
          for (std::size_t j = 0; j < w; ++j) {
            const PartialAssignment& a = batch[b0 + j];
            if (prev == nullptr || !(a == *prev)) tape.resolve_observed(a, ws.observed);
            prev = &a;
            tape.zero_contradicted(ws.observed, sigs, w, j, Sig{0}, row_of_);
          }
        }
      }
      std::fill(ovf, ovf + w, Sig{0});
      std::fill(und, und + w, Sig{0});
      for (std::size_t j = 0; j < w; ++j) qflags[j] = param_flags_;

      if constexpr (kU32) {
        float_sweep32_(*schedule_, exps, sigs, ovf, und, w, float_params_);
      } else {
        float_sweep64_(*schedule_, exps, sigs, ovf, und, w, float_params_);
      }

      // OR-reduce the per-lane sticky masks into the per-column flags —
      // exactly the saturation / flush events the wide kernels raise inline.
      const std::int32_t* root_exp = exps + root_row_ * w;
      const Sig* root_sig = sigs + root_row_ * w;
      for (std::size_t j = 0; j < w; ++j) {
        qflags[j].overflow |= ovf[j] != 0;
        qflags[j].underflow |= und[j] != 0;
        roots_[b0 + j] =
            lowprec::fl_raw_to_double(lowprec::FloatRaw{root_exp[j], root_sig[j]}, ops_.fmt);
      }
    }
  } else {
    (void)batch;
    (void)begin;
    (void)end;
    (void)ws;
  }
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::schedule_sweep(Raw* buf, lowprec::ArithFlags* qflags,
                                                   std::size_t w) {
  const KernelSchedule& schedule = *schedule_;
  const std::int32_t* out_ids = schedule.out().data();
  const std::int32_t* lhs_ids = schedule.lhs().data();
  const std::int32_t* rhs_ids = schedule.rhs().data();
  for (const KernelSegment& seg : schedule.segments()) {
    if (seg.kind == KernelSegment::Kind::kGeneric) {
      schedule_generic_run(buf, qflags, w, seg.begin, seg.end);
      continue;
    }
    // Fanin-2 runs: out = lhs OP rhs directly — no first-child copy, no CSR
    // offset lookups, and the kind branch hoisted out of the op loop.  The
    // per-lane fold order and flag sinks are exactly the generic fold's, so
    // values AND sticky flags stay bit-identical.
    const auto run = [&](auto&& op) {
      for (std::uint32_t i = seg.begin; i < seg.end; ++i) {
        Raw* __restrict o = buf + static_cast<std::size_t>(out_ids[i]) * w;
        const Raw* a = buf + static_cast<std::size_t>(lhs_ids[i]) * w;
        const Raw* b = buf + static_cast<std::size_t>(rhs_ids[i]) * w;
        for (std::size_t j = 0; j < w; ++j) o[j] = op(a[j], b[j], qflags[j]);
      }
    };
    switch (seg.kind) {
      case KernelSegment::Kind::kSum2:
        run([this](const Raw& a, const Raw& b, lowprec::ArithFlags& f) {
          return ops_.add(a, b, f);
        });
        break;
      case KernelSegment::Kind::kProd2:
        run([this](const Raw& a, const Raw& b, lowprec::ArithFlags& f) {
          return ops_.mul(a, b, f);
        });
        break;
      case KernelSegment::Kind::kMax2:
        run([this](const Raw& a, const Raw& b, lowprec::ArithFlags& f) {
          return ops_.max(a, b, f);
        });
        break;
      case KernelSegment::Kind::kGeneric:
        break;  // handled above
    }
  }
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::schedule_generic_run(Raw* buf, lowprec::ArithFlags* qflags,
                                                         std::size_t w, std::uint32_t gbegin,
                                                         std::uint32_t gend) {
  // Same CSR fold as generic_sweep, over the schedule's self-contained
  // generic arrays — rows already renamed through the layout's slot table.
  const KernelSchedule& schedule = *schedule_;
  const NodeKind* kinds = schedule.gen_kinds().data();
  const std::int32_t* gout = schedule.gen_out().data();
  const std::int32_t* offsets = schedule.gen_offsets().data();
  const std::int32_t* children = schedule.gen_children().data();

  for (std::uint32_t g = gbegin; g < gend; ++g) {
    const std::int32_t cb = offsets[g];
    const std::int32_t ce = offsets[g + 1];
    Raw* out = buf + static_cast<std::size_t>(gout[g]) * w;
    const Raw* first =
        buf + static_cast<std::size_t>(children[static_cast<std::size_t>(cb)]) * w;
    std::copy(first, first + w, out);
    switch (kinds[g]) {
      case NodeKind::kSum:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.add(out[j], rhs[j], qflags[j]);
        }
        break;
      case NodeKind::kProd:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.mul(out[j], rhs[j], qflags[j]);
        }
        break;
      case NodeKind::kMax:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.max(out[j], rhs[j], qflags[j]);
        }
        break;
      default:
        break;  // leaves never appear in the schedule
    }
  }
}

template <class RawOps>
void LowPrecBatchEvaluator<RawOps>::generic_sweep(Raw* buf, lowprec::ArithFlags* qflags,
                                                  std::size_t w, std::uint32_t pbegin,
                                                  std::uint32_t pend) {
  const CircuitTape& tape = *tape_;
  const auto& kinds = tape.kinds();
  const auto& offsets = tape.child_offsets();
  const auto& children = tape.children();
  const auto& ops = tape.op_ids();

  for (std::uint32_t p = pbegin; p < pend; ++p) {
    const std::size_t i = static_cast<std::size_t>(ops[p]);
    const std::int32_t cb = offsets[i];
    const std::int32_t ce = offsets[i + 1];
    Raw* out = buf + i * w;
    const Raw* first =
        buf + static_cast<std::size_t>(children[static_cast<std::size_t>(cb)]) * w;
    std::copy(first, first + w, out);
    switch (kinds[i]) {
      case NodeKind::kSum:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.add(out[j], rhs[j], qflags[j]);
        }
        break;
      case NodeKind::kProd:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.mul(out[j], rhs[j], qflags[j]);
        }
        break;
      case NodeKind::kMax:
        for (std::int32_t k = cb + 1; k < ce; ++k) {
          const Raw* rhs =
              buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
          for (std::size_t j = 0; j < w; ++j) out[j] = ops_.max(out[j], rhs[j], qflags[j]);
        }
        break;
      default:
        break;  // leaves never appear in op_ids
    }
  }
}

template class LowPrecBatchEvaluator<FixedRawOps>;
template class LowPrecBatchEvaluator<FloatRawOps>;

}  // namespace problp::ac
