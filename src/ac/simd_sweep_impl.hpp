// Internal: the one schedule-executor template behind every ISA level of
// ac/simd_sweep.hpp.  Included ONLY by the per-ISA translation units
// (simd_sweep.cpp for scalar, simd_sweep_avx2.cpp, simd_sweep_avx512.cpp,
// the NEON unit), each of which instantiates it with a distinct Tag type so
// every instantiation is a unique symbol compiled under that unit's vector
// ISA flags — no ODR merging can ever substitute a narrow-ISA body for a
// wide one.
//
// W is the unroll width in doubles (the native vector width of the level);
// lanes run in W-wide chunks with a scalar tail, so any block width works.
// Lane arithmetic is plain IEEE double add/mul/max — identical results at
// every W, which is what makes forced-level parity checks exact.
#pragma once

#include <cstring>

#include "ac/kernel_schedule.hpp"
#include "ac/simd_sweep.hpp"
#include "ac/tape.hpp"
#include "lowprec/fixed_point.hpp"
#include "lowprec/soft_float.hpp"

namespace problp::ac::simd::detail {

struct AddOp {
  static double apply(double a, double b) { return a + b; }
};
struct MulOp {
  static double apply(double a, double b) { return a * b; }
};
struct MaxOp {
  // Exactly std::max(a, b): returns `a` on ties, so -0.0/NaN corner bit
  // patterns match the generic engine's fold.
  static double apply(double a, double b) { return a < b ? b : a; }
};

/// One homogeneous fanin-2 run: out[i] = lhs[i] OP rhs[i], rows of w lanes.
/// Output rows never alias input rows (children strictly precede parents in
/// the tape; under a TapeLayout the allocator never hands an op the slot of
/// one of its own operands), hence the restrict on the destination.
template <int W, class Op, class Tag>
void fanin2_run(const std::int32_t* out, const std::int32_t* lhs, const std::int32_t* rhs,
                std::size_t n, double* buf, std::size_t w) {
  for (std::size_t i = 0; i < n; ++i) {
    double* __restrict o = buf + static_cast<std::size_t>(out[i]) * w;
    const double* a = buf + static_cast<std::size_t>(lhs[i]) * w;
    const double* b = buf + static_cast<std::size_t>(rhs[i]) * w;
    std::size_t j = 0;
    for (; j + W <= w; j += W) {
      for (int l = 0; l < W; ++l) o[j + l] = Op::apply(a[j + l], b[j + l]);
    }
    for (; j < w; ++j) o[j] = Op::apply(a[j], b[j]);
  }
}

/// One generic fallback run: the classic CSR fold (first-child copy, then
/// one fold per remaining child) over generic ops [gbegin, gend) of the
/// schedule's self-contained generic arrays — same shape as the
/// pre-schedule engine, with the inner lane loops W-chunked.
template <int W, class Tag>
void generic_run(const KernelSchedule& schedule, std::uint32_t gbegin, std::uint32_t gend,
                 double* buf, std::size_t w) {
  const NodeKind* kinds = schedule.gen_kinds().data();
  const std::int32_t* gout = schedule.gen_out().data();
  const std::int32_t* offsets = schedule.gen_offsets().data();
  const std::int32_t* children = schedule.gen_children().data();
  for (std::uint32_t g = gbegin; g < gend; ++g) {
    const std::int32_t cb = offsets[g];
    const std::int32_t ce = offsets[g + 1];
    double* __restrict out = buf + static_cast<std::size_t>(gout[g]) * w;
    const double* first =
        buf + static_cast<std::size_t>(children[static_cast<std::size_t>(cb)]) * w;
    std::memcpy(out, first, w * sizeof(double));
    for (std::int32_t k = cb + 1; k < ce; ++k) {
      const double* rhs =
          buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
      std::size_t j = 0;
      switch (kinds[g]) {
        case NodeKind::kSum:
          for (; j + W <= w; j += W)
            for (int l = 0; l < W; ++l) out[j + l] += rhs[j + l];
          for (; j < w; ++j) out[j] += rhs[j];
          break;
        case NodeKind::kProd:
          for (; j + W <= w; j += W)
            for (int l = 0; l < W; ++l) out[j + l] *= rhs[j + l];
          for (; j < w; ++j) out[j] *= rhs[j];
          break;
        case NodeKind::kMax:
          // `a < b ? b : a` is exactly std::max — ties keep the accumulator.
          for (; j + W <= w; j += W)
            for (int l = 0; l < W; ++l)
              out[j + l] = out[j + l] < rhs[j + l] ? rhs[j + l] : out[j + l];
          for (; j < w; ++j) out[j] = out[j] < rhs[j] ? rhs[j] : out[j];
          break;
        default:
          break;  // leaves never appear in the schedule
      }
    }
  }
}

/// The full schedule for one block: segments in order, fanin-2 runs through
/// the specialised kernels, everything else through the CSR fold.
template <int W, class Tag>
void run_exact_schedule(const KernelSchedule& schedule, double* buf, std::size_t w) {
  const std::int32_t* out = schedule.out().data();
  const std::int32_t* lhs = schedule.lhs().data();
  const std::int32_t* rhs = schedule.rhs().data();
  for (const KernelSegment& seg : schedule.segments()) {
    switch (seg.kind) {
      case KernelSegment::Kind::kSum2:
        fanin2_run<W, AddOp, Tag>(out + seg.begin, lhs + seg.begin, rhs + seg.begin,
                                  seg.size(), buf, w);
        break;
      case KernelSegment::Kind::kProd2:
        fanin2_run<W, MulOp, Tag>(out + seg.begin, lhs + seg.begin, rhs + seg.begin,
                                  seg.size(), buf, w);
        break;
      case KernelSegment::Kind::kMax2:
        fanin2_run<W, MaxOp, Tag>(out + seg.begin, lhs + seg.begin, rhs + seg.begin,
                                  seg.size(), buf, w);
        break;
      case KernelSegment::Kind::kGeneric:
        generic_run<W, Tag>(schedule, seg.begin, seg.end, buf, w);
        break;
    }
  }
}

// ---- narrow-word fixed-point schedule --------------------------------------
// The same executor shape over u32 raw words of one narrow fixed format
// (lowprec/fixed_point.hpp documents the eligibility rule and the per-word
// kernels; saturated narrow words are < 2^30, so u32 storage is exact and
// each vector register carries twice the lanes of the former u64 layout).
// Unlike the double kernels, every op also feeds the per-lane sticky
// overflow mask `ovf` — a second streaming array the vectoriser handles
// like any other lane output.

/// Saturating lane add: carries the format's saturation point.
struct FxAddOp {
  std::uint32_t max_raw;
  std::uint32_t apply(std::uint32_t a, std::uint32_t b, std::uint32_t& ovf) const {
    return lowprec::fx_add_raw_u32(a, b, max_raw, ovf);
  }
};

/// Rounding lane multiply; Mode is a template parameter so the rounding
/// branch is hoisted out of every lane loop (kTruncate also serves F == 0,
/// where a shift-0 truncation is the exact product).
template <lowprec::RoundingMode Mode>
struct FxMulOp {
  std::uint32_t max_raw;
  std::uint32_t half;
  int fraction_bits;
  std::uint32_t apply(std::uint32_t a, std::uint32_t b, std::uint32_t& ovf) const {
    return lowprec::fx_mul_raw_u32<Mode>(a, b, fraction_bits, half, max_raw, ovf);
  }
};

/// Exact lane max (never overflows).
struct FxMaxOp {
  std::uint32_t apply(std::uint32_t a, std::uint32_t b, std::uint32_t&) const {
    return lowprec::fx_max_raw_u32(a, b);
  }
};

/// One homogeneous fanin-2 run on narrow fixed-point rows of w u32 lanes.
/// Output rows never alias input rows (children strictly precede parents),
/// and `ovf` is a separate accumulator array, hence the restricts.
template <int W, class Op, class Tag>
void fixed_fanin2_run(const std::int32_t* out, const std::int32_t* lhs,
                      const std::int32_t* rhs, std::size_t n, std::uint32_t* buf,
                      std::uint32_t* __restrict ovf, std::size_t w, const Op& op) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t* __restrict o = buf + static_cast<std::size_t>(out[i]) * w;
    const std::uint32_t* a = buf + static_cast<std::size_t>(lhs[i]) * w;
    const std::uint32_t* b = buf + static_cast<std::size_t>(rhs[i]) * w;
    std::size_t j = 0;
    for (; j + W <= w; j += W) {
      for (int l = 0; l < W; ++l) o[j + l] = op.apply(a[j + l], b[j + l], ovf[j + l]);
    }
    for (; j < w; ++j) o[j] = op.apply(a[j], b[j], ovf[j]);
  }
}

/// The Prod2 run is a customisation point: the primary template is the
/// generic autovectorised lane loop, but an ISA unit may specialise it for
/// its Tag when the compiler's codegen for the widening u32*u32 product is
/// poor (GCC 12 lowers it through a full 64x64 multiply — three vpmuludq
/// plus cross-term shifts per half — because the zero high halves of the
/// zero-extended operands are invisible to the vectoriser).  Any
/// specialisation must replay lowprec::fx_mul_raw_u32 step for step so the
/// lanes stay bit-identical to the scalar kernel.
template <int W, lowprec::RoundingMode Mode, class Tag>
struct FixedMulRun {
  static void run(const std::int32_t* out, const std::int32_t* lhs, const std::int32_t* rhs,
                  std::size_t n, std::uint32_t* buf, std::uint32_t* __restrict ovf,
                  std::size_t w, const FixedSweepParams& p) {
    const FxMulOp<Mode> mul{p.max_raw, p.half, p.fraction_bits};
    fixed_fanin2_run<W, FxMulOp<Mode>, Tag>(out, lhs, rhs, n, buf, ovf, w, mul);
  }

  /// One accumulating product fold o[j] = o[j] * rhs[j] for the generic CSR
  /// path — `o` intentionally not restrict-qualified against itself.
  static void fold(std::uint32_t* o, const std::uint32_t* rhs, std::uint32_t* __restrict ovf,
                   std::size_t w, const FixedSweepParams& p) {
    const FxMulOp<Mode> mul{p.max_raw, p.half, p.fraction_bits};
    std::size_t j = 0;
    for (; j + W <= w; j += W) {
      for (int l = 0; l < W; ++l) o[j + l] = mul.apply(o[j + l], rhs[j + l], ovf[j + l]);
    }
    for (; j < w; ++j) o[j] = mul.apply(o[j], rhs[j], ovf[j]);
  }
};

/// One generic fallback run on narrow fixed-point rows: the classic CSR fold
/// over generic ops [gbegin, gend) of the schedule's self-contained generic
/// arrays — first-child copy, then one fold per remaining child — with the
/// same lane kernels, so values and overflow verdicts replay the wide
/// generic fold exactly.
template <int W, lowprec::RoundingMode Mode, class Tag>
void fixed_generic_run(const KernelSchedule& schedule, std::uint32_t gbegin,
                       std::uint32_t gend, std::uint32_t* buf, std::uint32_t* __restrict ovf,
                       std::size_t w, const FixedSweepParams& p) {
  const FxAddOp add{p.max_raw};
  const FxMaxOp mx{};
  const NodeKind* kinds = schedule.gen_kinds().data();
  const std::int32_t* gout = schedule.gen_out().data();
  const std::int32_t* offsets = schedule.gen_offsets().data();
  const std::int32_t* children = schedule.gen_children().data();
  const auto fold = [&](std::uint32_t* __restrict o, const std::uint32_t* rhs,
                        const auto& op) {
    std::size_t j = 0;
    for (; j + W <= w; j += W) {
      for (int l = 0; l < W; ++l) o[j + l] = op.apply(o[j + l], rhs[j + l], ovf[j + l]);
    }
    for (; j < w; ++j) o[j] = op.apply(o[j], rhs[j], ovf[j]);
  };
  for (std::uint32_t g = gbegin; g < gend; ++g) {
    const std::int32_t cb = offsets[g];
    const std::int32_t ce = offsets[g + 1];
    std::uint32_t* __restrict out = buf + static_cast<std::size_t>(gout[g]) * w;
    const std::uint32_t* first =
        buf + static_cast<std::size_t>(children[static_cast<std::size_t>(cb)]) * w;
    std::memcpy(out, first, w * sizeof(std::uint32_t));
    for (std::int32_t k = cb + 1; k < ce; ++k) {
      const std::uint32_t* rhs =
          buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
      switch (kinds[g]) {
        case NodeKind::kSum:
          fold(out, rhs, add);
          break;
        case NodeKind::kProd:
          FixedMulRun<W, Mode, Tag>::fold(out, rhs, ovf, w, p);
          break;
        case NodeKind::kMax:
          fold(out, rhs, mx);
          break;
        default:
          break;  // leaves never appear in the schedule
      }
    }
  }
}

/// The full narrow fixed-point schedule for one block, at one rounding
/// instantiation.
template <int W, lowprec::RoundingMode Mode, class Tag>
void run_fixed_schedule_mode(const KernelSchedule& schedule, std::uint32_t* buf,
                             std::uint32_t* ovf, std::size_t w, const FixedSweepParams& p) {
  const std::int32_t* out = schedule.out().data();
  const std::int32_t* lhs = schedule.lhs().data();
  const std::int32_t* rhs = schedule.rhs().data();
  const FxAddOp add{p.max_raw};
  const FxMaxOp mx{};
  for (const KernelSegment& seg : schedule.segments()) {
    switch (seg.kind) {
      case KernelSegment::Kind::kSum2:
        fixed_fanin2_run<W, FxAddOp, Tag>(out + seg.begin, lhs + seg.begin, rhs + seg.begin,
                                          seg.size(), buf, ovf, w, add);
        break;
      case KernelSegment::Kind::kProd2:
        FixedMulRun<W, Mode, Tag>::run(out + seg.begin, lhs + seg.begin, rhs + seg.begin,
                                       seg.size(), buf, ovf, w, p);
        break;
      case KernelSegment::Kind::kMax2:
        fixed_fanin2_run<W, FxMaxOp, Tag>(out + seg.begin, lhs + seg.begin, rhs + seg.begin,
                                          seg.size(), buf, ovf, w, mx);
        break;
      case KernelSegment::Kind::kGeneric:
        fixed_generic_run<W, Mode, Tag>(schedule, seg.begin, seg.end, buf, ovf, w, p);
        break;
    }
  }
}

/// Rounding-mode dispatch, once per block.  F == 0 runs the truncate
/// instantiation regardless of the requested mode: a shift-0 truncation IS
/// the exact product (round_shift_right with shift <= 0), while the nearest
/// tie-break would misfire on rem == half == 0.
template <int W, class Tag>
void run_fixed_schedule(const KernelSchedule& schedule, std::uint32_t* buf,
                        std::uint32_t* ovf, std::size_t w, const FixedSweepParams& p) {
  if (p.mode == lowprec::RoundingMode::kNearestEven && p.fraction_bits > 0) {
    run_fixed_schedule_mode<W, lowprec::RoundingMode::kNearestEven, Tag>(schedule, buf, ovf,
                                                                         w, p);
  } else {
    run_fixed_schedule_mode<W, lowprec::RoundingMode::kTruncate, Tag>(schedule, buf, ovf, w,
                                                                      p);
  }
}

// ---- decomposed float schedule ---------------------------------------------
// The same executor shape over decomposed (exp, sig) rows of one lane-word
// float format (lowprec/soft_float.hpp documents the eligibility rule and
// the branch-free per-word kernels; FloatFormat::fits_narrow_word() formats
// store u32 significand lanes, fits_lane_word() u64 ones, exponents always
// i32).  Every op streams two value rows per operand plus the two per-lane
// sticky mask arrays — all plain lane arithmetic the vectoriser handles.

/// Saturating lane add on decomposed rows.
template <class Sig, lowprec::RoundingMode Mode>
struct FlAddOp {
  int m;
  std::int32_t max_exp;
  void apply(std::int32_t ae, Sig as, std::int32_t be, Sig bs, std::int32_t& oe, Sig& os,
             Sig& ovf, Sig&) const {
    lowprec::detail::fl_add_raw_lane<Sig, Mode>(ae, as, be, bs, m, max_exp, oe, os, ovf);
  }
};

/// Rounding lane multiply; Mode is a template parameter so the rounding
/// branch is hoisted out of every lane loop (M >= 1 keeps half >= 1 in both
/// modes, so unlike the fixed path there is no F == 0 special case).
template <class Sig, lowprec::RoundingMode Mode>
struct FlMulOp {
  int m;
  std::int32_t min_exp;
  std::int32_t max_exp;
  void apply(std::int32_t ae, Sig as, std::int32_t be, Sig bs, std::int32_t& oe, Sig& os,
             Sig& ovf, Sig& und) const {
    lowprec::detail::fl_mul_raw_lane<Sig, Mode>(ae, as, be, bs, m, min_exp, max_exp, oe, os,
                                                ovf, und);
  }
};

/// Exact lane max (never flags).
template <class Sig>
struct FlMaxOp {
  void apply(std::int32_t ae, Sig as, std::int32_t be, Sig bs, std::int32_t& oe, Sig& os,
             Sig&, Sig&) const {
    lowprec::detail::fl_max_raw_lane<Sig>(ae, as, be, bs, oe, os);
  }
};

/// One homogeneous fanin-2 run on decomposed float rows of w lanes.  Output
/// rows never alias input rows (children strictly precede parents; the slot
/// allocator never hands an op an operand's slot), and the masks are
/// separate accumulator arrays, hence the restricts.
template <int W, class Sig, class Op, class Tag>
void float_fanin2_run(const std::int32_t* out, const std::int32_t* lhs,
                      const std::int32_t* rhs, std::size_t n, std::int32_t* exps, Sig* sigs,
                      Sig* __restrict ovf, Sig* __restrict und, std::size_t w, const Op& op) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ro = static_cast<std::size_t>(out[i]) * w;
    const std::size_t ra = static_cast<std::size_t>(lhs[i]) * w;
    const std::size_t rb = static_cast<std::size_t>(rhs[i]) * w;
    std::int32_t* __restrict oe = exps + ro;
    Sig* __restrict os = sigs + ro;
    const std::int32_t* ae = exps + ra;
    const Sig* as = sigs + ra;
    const std::int32_t* be = exps + rb;
    const Sig* bs = sigs + rb;
    std::size_t j = 0;
    for (; j + W <= w; j += W) {
      for (int l = 0; l < W; ++l) {
        op.apply(ae[j + l], as[j + l], be[j + l], bs[j + l], oe[j + l], os[j + l],
                 ovf[j + l], und[j + l]);
      }
    }
    for (; j < w; ++j) op.apply(ae[j], as[j], be[j], bs[j], oe[j], os[j], ovf[j], und[j]);
  }
}

/// One generic fallback run on decomposed float rows: the classic CSR fold
/// (first-child copy of both rows, then one fold per remaining child) with
/// the same lane kernels, so values and flag verdicts replay the wide
/// generic fold exactly.
template <int W, class Sig, lowprec::RoundingMode Mode, class Tag>
void float_generic_run(const KernelSchedule& schedule, std::uint32_t gbegin,
                       std::uint32_t gend, std::int32_t* exps, Sig* sigs,
                       Sig* __restrict ovf, Sig* __restrict und, std::size_t w,
                       const FloatSweepParams& p) {
  const FlAddOp<Sig, Mode> add{p.mantissa_bits, p.max_exp};
  const FlMulOp<Sig, Mode> mul{p.mantissa_bits, p.min_exp, p.max_exp};
  const FlMaxOp<Sig> mx{};
  const NodeKind* kinds = schedule.gen_kinds().data();
  const std::int32_t* gout = schedule.gen_out().data();
  const std::int32_t* offsets = schedule.gen_offsets().data();
  const std::int32_t* children = schedule.gen_children().data();
  const auto fold = [&](std::int32_t* oe, Sig* os, const std::int32_t* be, const Sig* bs,
                        const auto& op) {
    std::size_t j = 0;
    for (; j + W <= w; j += W) {
      for (int l = 0; l < W; ++l) {
        op.apply(oe[j + l], os[j + l], be[j + l], bs[j + l], oe[j + l], os[j + l],
                 ovf[j + l], und[j + l]);
      }
    }
    for (; j < w; ++j) op.apply(oe[j], os[j], be[j], bs[j], oe[j], os[j], ovf[j], und[j]);
  };
  for (std::uint32_t g = gbegin; g < gend; ++g) {
    const std::int32_t cb = offsets[g];
    const std::int32_t ce = offsets[g + 1];
    const std::size_t ro = static_cast<std::size_t>(gout[g]) * w;
    const std::size_t rf =
        static_cast<std::size_t>(children[static_cast<std::size_t>(cb)]) * w;
    std::int32_t* oe = exps + ro;
    Sig* os = sigs + ro;
    std::memcpy(oe, exps + rf, w * sizeof(std::int32_t));
    std::memcpy(os, sigs + rf, w * sizeof(Sig));
    for (std::int32_t k = cb + 1; k < ce; ++k) {
      const std::size_t rc = static_cast<std::size_t>(
                                 children[static_cast<std::size_t>(k)]) *
                             w;
      switch (kinds[g]) {
        case NodeKind::kSum:
          fold(oe, os, exps + rc, sigs + rc, add);
          break;
        case NodeKind::kProd:
          fold(oe, os, exps + rc, sigs + rc, mul);
          break;
        case NodeKind::kMax:
          fold(oe, os, exps + rc, sigs + rc, mx);
          break;
        default:
          break;  // leaves never appear in the schedule
      }
    }
  }
}

/// The full decomposed float schedule for one block, at one rounding
/// instantiation.
template <int W, class Sig, lowprec::RoundingMode Mode, class Tag>
void run_float_schedule_mode(const KernelSchedule& schedule, std::int32_t* exps, Sig* sigs,
                             Sig* ovf, Sig* und, std::size_t w, const FloatSweepParams& p) {
  const std::int32_t* out = schedule.out().data();
  const std::int32_t* lhs = schedule.lhs().data();
  const std::int32_t* rhs = schedule.rhs().data();
  const FlAddOp<Sig, Mode> add{p.mantissa_bits, p.max_exp};
  const FlMulOp<Sig, Mode> mul{p.mantissa_bits, p.min_exp, p.max_exp};
  const FlMaxOp<Sig> mx{};
  for (const KernelSegment& seg : schedule.segments()) {
    switch (seg.kind) {
      case KernelSegment::Kind::kSum2:
        float_fanin2_run<W, Sig, FlAddOp<Sig, Mode>, Tag>(
            out + seg.begin, lhs + seg.begin, rhs + seg.begin, seg.size(), exps, sigs, ovf,
            und, w, add);
        break;
      case KernelSegment::Kind::kProd2:
        float_fanin2_run<W, Sig, FlMulOp<Sig, Mode>, Tag>(
            out + seg.begin, lhs + seg.begin, rhs + seg.begin, seg.size(), exps, sigs, ovf,
            und, w, mul);
        break;
      case KernelSegment::Kind::kMax2:
        float_fanin2_run<W, Sig, FlMaxOp<Sig>, Tag>(out + seg.begin, lhs + seg.begin,
                                                    rhs + seg.begin, seg.size(), exps, sigs,
                                                    ovf, und, w, mx);
        break;
      case KernelSegment::Kind::kGeneric:
        float_generic_run<W, Sig, Mode, Tag>(schedule, seg.begin, seg.end, exps, sigs, ovf,
                                             und, w, p);
        break;
    }
  }
}

/// Rounding-mode dispatch, once per block.  Both modes are valid at every
/// M >= 1 (the carry-bias halves are >= 4 for adds and >= 1 for multiplies).
template <int W, class Sig, class Tag>
void run_float_schedule(const KernelSchedule& schedule, std::int32_t* exps, Sig* sigs,
                        Sig* ovf, Sig* und, std::size_t w, const FloatSweepParams& p) {
  if (p.mode == lowprec::RoundingMode::kNearestEven) {
    run_float_schedule_mode<W, Sig, lowprec::RoundingMode::kNearestEven, Tag>(
        schedule, exps, sigs, ovf, und, w, p);
  } else {
    run_float_schedule_mode<W, Sig, lowprec::RoundingMode::kTruncate, Tag>(schedule, exps,
                                                                           sigs, ovf, und, w,
                                                                           p);
  }
}

}  // namespace problp::ac::simd::detail
