// Internal: the one schedule-executor template behind every ISA level of
// ac/simd_sweep.hpp.  Included ONLY by the per-ISA translation units
// (simd_sweep.cpp for scalar, simd_sweep_avx2.cpp, simd_sweep_avx512.cpp,
// the NEON unit), each of which instantiates it with a distinct Tag type so
// every instantiation is a unique symbol compiled under that unit's vector
// ISA flags — no ODR merging can ever substitute a narrow-ISA body for a
// wide one.
//
// W is the unroll width in doubles (the native vector width of the level);
// lanes run in W-wide chunks with a scalar tail, so any block width works.
// Lane arithmetic is plain IEEE double add/mul/max — identical results at
// every W, which is what makes forced-level parity checks exact.
#pragma once

#include <cstring>

#include "ac/kernel_schedule.hpp"
#include "ac/simd_sweep.hpp"
#include "ac/tape.hpp"
#include "lowprec/fixed_point.hpp"

namespace problp::ac::simd::detail {

struct AddOp {
  static double apply(double a, double b) { return a + b; }
};
struct MulOp {
  static double apply(double a, double b) { return a * b; }
};
struct MaxOp {
  // Exactly std::max(a, b): returns `a` on ties, so -0.0/NaN corner bit
  // patterns match the generic engine's fold.
  static double apply(double a, double b) { return a < b ? b : a; }
};

/// One homogeneous fanin-2 run: out[i] = lhs[i] OP rhs[i], rows of w lanes.
/// Output rows never alias input rows (children strictly precede parents in
/// the tape; under a TapeLayout the allocator never hands an op the slot of
/// one of its own operands), hence the restrict on the destination.
template <int W, class Op, class Tag>
void fanin2_run(const std::int32_t* out, const std::int32_t* lhs, const std::int32_t* rhs,
                std::size_t n, double* buf, std::size_t w) {
  for (std::size_t i = 0; i < n; ++i) {
    double* __restrict o = buf + static_cast<std::size_t>(out[i]) * w;
    const double* a = buf + static_cast<std::size_t>(lhs[i]) * w;
    const double* b = buf + static_cast<std::size_t>(rhs[i]) * w;
    std::size_t j = 0;
    for (; j + W <= w; j += W) {
      for (int l = 0; l < W; ++l) o[j + l] = Op::apply(a[j + l], b[j + l]);
    }
    for (; j < w; ++j) o[j] = Op::apply(a[j], b[j]);
  }
}

/// One generic fallback run: the classic CSR fold (first-child copy, then
/// one fold per remaining child) over generic ops [gbegin, gend) of the
/// schedule's self-contained generic arrays — same shape as the
/// pre-schedule engine, with the inner lane loops W-chunked.
template <int W, class Tag>
void generic_run(const KernelSchedule& schedule, std::uint32_t gbegin, std::uint32_t gend,
                 double* buf, std::size_t w) {
  const NodeKind* kinds = schedule.gen_kinds().data();
  const std::int32_t* gout = schedule.gen_out().data();
  const std::int32_t* offsets = schedule.gen_offsets().data();
  const std::int32_t* children = schedule.gen_children().data();
  for (std::uint32_t g = gbegin; g < gend; ++g) {
    const std::int32_t cb = offsets[g];
    const std::int32_t ce = offsets[g + 1];
    double* __restrict out = buf + static_cast<std::size_t>(gout[g]) * w;
    const double* first =
        buf + static_cast<std::size_t>(children[static_cast<std::size_t>(cb)]) * w;
    std::memcpy(out, first, w * sizeof(double));
    for (std::int32_t k = cb + 1; k < ce; ++k) {
      const double* rhs =
          buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
      std::size_t j = 0;
      switch (kinds[g]) {
        case NodeKind::kSum:
          for (; j + W <= w; j += W)
            for (int l = 0; l < W; ++l) out[j + l] += rhs[j + l];
          for (; j < w; ++j) out[j] += rhs[j];
          break;
        case NodeKind::kProd:
          for (; j + W <= w; j += W)
            for (int l = 0; l < W; ++l) out[j + l] *= rhs[j + l];
          for (; j < w; ++j) out[j] *= rhs[j];
          break;
        case NodeKind::kMax:
          // `a < b ? b : a` is exactly std::max — ties keep the accumulator.
          for (; j + W <= w; j += W)
            for (int l = 0; l < W; ++l)
              out[j + l] = out[j + l] < rhs[j + l] ? rhs[j + l] : out[j + l];
          for (; j < w; ++j) out[j] = out[j] < rhs[j] ? rhs[j] : out[j];
          break;
        default:
          break;  // leaves never appear in the schedule
      }
    }
  }
}

/// The full schedule for one block: segments in order, fanin-2 runs through
/// the specialised kernels, everything else through the CSR fold.
template <int W, class Tag>
void run_exact_schedule(const KernelSchedule& schedule, double* buf, std::size_t w) {
  const std::int32_t* out = schedule.out().data();
  const std::int32_t* lhs = schedule.lhs().data();
  const std::int32_t* rhs = schedule.rhs().data();
  for (const KernelSegment& seg : schedule.segments()) {
    switch (seg.kind) {
      case KernelSegment::Kind::kSum2:
        fanin2_run<W, AddOp, Tag>(out + seg.begin, lhs + seg.begin, rhs + seg.begin,
                                  seg.size(), buf, w);
        break;
      case KernelSegment::Kind::kProd2:
        fanin2_run<W, MulOp, Tag>(out + seg.begin, lhs + seg.begin, rhs + seg.begin,
                                  seg.size(), buf, w);
        break;
      case KernelSegment::Kind::kMax2:
        fanin2_run<W, MaxOp, Tag>(out + seg.begin, lhs + seg.begin, rhs + seg.begin,
                                  seg.size(), buf, w);
        break;
      case KernelSegment::Kind::kGeneric:
        generic_run<W, Tag>(schedule, seg.begin, seg.end, buf, w);
        break;
    }
  }
}

// ---- narrow-word fixed-point schedule --------------------------------------
// The same executor shape over u32 raw words of one narrow fixed format
// (lowprec/fixed_point.hpp documents the eligibility rule and the per-word
// kernels; saturated narrow words are < 2^30, so u32 storage is exact and
// each vector register carries twice the lanes of the former u64 layout).
// Unlike the double kernels, every op also feeds the per-lane sticky
// overflow mask `ovf` — a second streaming array the vectoriser handles
// like any other lane output.

/// Saturating lane add: carries the format's saturation point.
struct FxAddOp {
  std::uint32_t max_raw;
  std::uint32_t apply(std::uint32_t a, std::uint32_t b, std::uint32_t& ovf) const {
    return lowprec::fx_add_raw_u32(a, b, max_raw, ovf);
  }
};

/// Rounding lane multiply; Mode is a template parameter so the rounding
/// branch is hoisted out of every lane loop (kTruncate also serves F == 0,
/// where a shift-0 truncation is the exact product).
template <lowprec::RoundingMode Mode>
struct FxMulOp {
  std::uint32_t max_raw;
  std::uint32_t half;
  int fraction_bits;
  std::uint32_t apply(std::uint32_t a, std::uint32_t b, std::uint32_t& ovf) const {
    return lowprec::fx_mul_raw_u32<Mode>(a, b, fraction_bits, half, max_raw, ovf);
  }
};

/// Exact lane max (never overflows).
struct FxMaxOp {
  std::uint32_t apply(std::uint32_t a, std::uint32_t b, std::uint32_t&) const {
    return lowprec::fx_max_raw_u32(a, b);
  }
};

/// One homogeneous fanin-2 run on narrow fixed-point rows of w u32 lanes.
/// Output rows never alias input rows (children strictly precede parents),
/// and `ovf` is a separate accumulator array, hence the restricts.
template <int W, class Op, class Tag>
void fixed_fanin2_run(const std::int32_t* out, const std::int32_t* lhs,
                      const std::int32_t* rhs, std::size_t n, std::uint32_t* buf,
                      std::uint32_t* __restrict ovf, std::size_t w, const Op& op) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t* __restrict o = buf + static_cast<std::size_t>(out[i]) * w;
    const std::uint32_t* a = buf + static_cast<std::size_t>(lhs[i]) * w;
    const std::uint32_t* b = buf + static_cast<std::size_t>(rhs[i]) * w;
    std::size_t j = 0;
    for (; j + W <= w; j += W) {
      for (int l = 0; l < W; ++l) o[j + l] = op.apply(a[j + l], b[j + l], ovf[j + l]);
    }
    for (; j < w; ++j) o[j] = op.apply(a[j], b[j], ovf[j]);
  }
}

/// The Prod2 run is a customisation point: the primary template is the
/// generic autovectorised lane loop, but an ISA unit may specialise it for
/// its Tag when the compiler's codegen for the widening u32*u32 product is
/// poor (GCC 12 lowers it through a full 64x64 multiply — three vpmuludq
/// plus cross-term shifts per half — because the zero high halves of the
/// zero-extended operands are invisible to the vectoriser).  Any
/// specialisation must replay lowprec::fx_mul_raw_u32 step for step so the
/// lanes stay bit-identical to the scalar kernel.
template <int W, lowprec::RoundingMode Mode, class Tag>
struct FixedMulRun {
  static void run(const std::int32_t* out, const std::int32_t* lhs, const std::int32_t* rhs,
                  std::size_t n, std::uint32_t* buf, std::uint32_t* __restrict ovf,
                  std::size_t w, const FixedSweepParams& p) {
    const FxMulOp<Mode> mul{p.max_raw, p.half, p.fraction_bits};
    fixed_fanin2_run<W, FxMulOp<Mode>, Tag>(out, lhs, rhs, n, buf, ovf, w, mul);
  }

  /// One accumulating product fold o[j] = o[j] * rhs[j] for the generic CSR
  /// path — `o` intentionally not restrict-qualified against itself.
  static void fold(std::uint32_t* o, const std::uint32_t* rhs, std::uint32_t* __restrict ovf,
                   std::size_t w, const FixedSweepParams& p) {
    const FxMulOp<Mode> mul{p.max_raw, p.half, p.fraction_bits};
    std::size_t j = 0;
    for (; j + W <= w; j += W) {
      for (int l = 0; l < W; ++l) o[j + l] = mul.apply(o[j + l], rhs[j + l], ovf[j + l]);
    }
    for (; j < w; ++j) o[j] = mul.apply(o[j], rhs[j], ovf[j]);
  }
};

/// One generic fallback run on narrow fixed-point rows: the classic CSR fold
/// over generic ops [gbegin, gend) of the schedule's self-contained generic
/// arrays — first-child copy, then one fold per remaining child — with the
/// same lane kernels, so values and overflow verdicts replay the wide
/// generic fold exactly.
template <int W, lowprec::RoundingMode Mode, class Tag>
void fixed_generic_run(const KernelSchedule& schedule, std::uint32_t gbegin,
                       std::uint32_t gend, std::uint32_t* buf, std::uint32_t* __restrict ovf,
                       std::size_t w, const FixedSweepParams& p) {
  const FxAddOp add{p.max_raw};
  const FxMaxOp mx{};
  const NodeKind* kinds = schedule.gen_kinds().data();
  const std::int32_t* gout = schedule.gen_out().data();
  const std::int32_t* offsets = schedule.gen_offsets().data();
  const std::int32_t* children = schedule.gen_children().data();
  const auto fold = [&](std::uint32_t* __restrict o, const std::uint32_t* rhs,
                        const auto& op) {
    std::size_t j = 0;
    for (; j + W <= w; j += W) {
      for (int l = 0; l < W; ++l) o[j + l] = op.apply(o[j + l], rhs[j + l], ovf[j + l]);
    }
    for (; j < w; ++j) o[j] = op.apply(o[j], rhs[j], ovf[j]);
  };
  for (std::uint32_t g = gbegin; g < gend; ++g) {
    const std::int32_t cb = offsets[g];
    const std::int32_t ce = offsets[g + 1];
    std::uint32_t* __restrict out = buf + static_cast<std::size_t>(gout[g]) * w;
    const std::uint32_t* first =
        buf + static_cast<std::size_t>(children[static_cast<std::size_t>(cb)]) * w;
    std::memcpy(out, first, w * sizeof(std::uint32_t));
    for (std::int32_t k = cb + 1; k < ce; ++k) {
      const std::uint32_t* rhs =
          buf + static_cast<std::size_t>(children[static_cast<std::size_t>(k)]) * w;
      switch (kinds[g]) {
        case NodeKind::kSum:
          fold(out, rhs, add);
          break;
        case NodeKind::kProd:
          FixedMulRun<W, Mode, Tag>::fold(out, rhs, ovf, w, p);
          break;
        case NodeKind::kMax:
          fold(out, rhs, mx);
          break;
        default:
          break;  // leaves never appear in the schedule
      }
    }
  }
}

/// The full narrow fixed-point schedule for one block, at one rounding
/// instantiation.
template <int W, lowprec::RoundingMode Mode, class Tag>
void run_fixed_schedule_mode(const KernelSchedule& schedule, std::uint32_t* buf,
                             std::uint32_t* ovf, std::size_t w, const FixedSweepParams& p) {
  const std::int32_t* out = schedule.out().data();
  const std::int32_t* lhs = schedule.lhs().data();
  const std::int32_t* rhs = schedule.rhs().data();
  const FxAddOp add{p.max_raw};
  const FxMaxOp mx{};
  for (const KernelSegment& seg : schedule.segments()) {
    switch (seg.kind) {
      case KernelSegment::Kind::kSum2:
        fixed_fanin2_run<W, FxAddOp, Tag>(out + seg.begin, lhs + seg.begin, rhs + seg.begin,
                                          seg.size(), buf, ovf, w, add);
        break;
      case KernelSegment::Kind::kProd2:
        FixedMulRun<W, Mode, Tag>::run(out + seg.begin, lhs + seg.begin, rhs + seg.begin,
                                       seg.size(), buf, ovf, w, p);
        break;
      case KernelSegment::Kind::kMax2:
        fixed_fanin2_run<W, FxMaxOp, Tag>(out + seg.begin, lhs + seg.begin, rhs + seg.begin,
                                          seg.size(), buf, ovf, w, mx);
        break;
      case KernelSegment::Kind::kGeneric:
        fixed_generic_run<W, Mode, Tag>(schedule, seg.begin, seg.end, buf, ovf, w, p);
        break;
    }
  }
}

/// Rounding-mode dispatch, once per block.  F == 0 runs the truncate
/// instantiation regardless of the requested mode: a shift-0 truncation IS
/// the exact product (round_shift_right with shift <= 0), while the nearest
/// tie-break would misfire on rem == half == 0.
template <int W, class Tag>
void run_fixed_schedule(const KernelSchedule& schedule, std::uint32_t* buf,
                        std::uint32_t* ovf, std::size_t w, const FixedSweepParams& p) {
  if (p.mode == lowprec::RoundingMode::kNearestEven && p.fraction_bits > 0) {
    run_fixed_schedule_mode<W, lowprec::RoundingMode::kNearestEven, Tag>(schedule, buf, ovf,
                                                                         w, p);
  } else {
    run_fixed_schedule_mode<W, lowprec::RoundingMode::kTruncate, Tag>(schedule, buf, ovf, w,
                                                                      p);
  }
}

}  // namespace problp::ac::simd::detail
