#include "ac/low_precision_eval.hpp"

#include "ac/number_ops.hpp"

namespace problp::ac {

using lowprec::FixedFormat;
using lowprec::FloatFormat;
using lowprec::RoundingMode;

LowPrecisionResult evaluate_fixed(const Circuit& circuit, const PartialAssignment& assignment,
                                  FixedFormat format, RoundingMode mode) {
  require(circuit.root() != kInvalidNode, "evaluate_fixed: circuit has no root");
  format.validate();
  LowPrecisionResult out;
  FixedOps ops{format, mode, &out.flags};
  const auto values = evaluate_all(circuit, assignment, ops);
  out.value = values[static_cast<std::size_t>(circuit.root())].to_double();
  return out;
}

LowPrecisionResult evaluate_float(const Circuit& circuit, const PartialAssignment& assignment,
                                  FloatFormat format, RoundingMode mode) {
  require(circuit.root() != kInvalidNode, "evaluate_float: circuit has no root");
  format.validate();
  LowPrecisionResult out;
  FloatOps ops{format, mode, &out.flags};
  const auto values = evaluate_all(circuit, assignment, ops);
  out.value = values[static_cast<std::size_t>(circuit.root())].to_double();
  return out;
}

}  // namespace problp::ac
