// Max-value and min-value analysis (paper §3.1.4).
//
// Every AC node is a monotonically increasing function of the indicators
// (the circuit contains only +, *, max over non-negative values), so:
//
//  * Max analysis: all node values are simultaneously maximal when every
//    indicator is 1 — a single double evaluation yields, per node, the
//    largest value that node can ever take over all queries.  These maxima
//    feed both the fixed-point multiplier error model (a_max, b_max of
//    eq. 5) and the integer/exponent-bit sizing.
//
//  * Min analysis: the smallest *positive* value of every node over all
//    indicator assignments is obtained with all indicators at 1 and adders
//    replaced by min operators.  Intuition: any indicator assignment selects
//    a subset of each sum's terms; the smallest non-zero outcome keeps
//    exactly one — the smallest — term alive, which is what min computes.
//    This lower-bounds Pr(e) for the conditional-query bound (eq. 14) and
//    sizes the float exponent against underflow.
//
// Zero-valued parameters would make "smallest positive" ill-defined at sum
// nodes; min analysis therefore skips exact-zero children (a sum's minimum
// positive value cannot come from a zero term) and only returns 0 when a
// node is structurally zero.
#pragma once

#include <vector>

#include "ac/circuit.hpp"

namespace problp::ac {

/// The min analysis as an Ops instance: adders (and MAX nodes) fold with
/// "smallest positive child, else 0", multipliers stay exact.  Running the
/// standard forward sweep (interpreter or tape) with all indicators at 1 and
/// these Ops reproduces min_value_analysis node for node — which is what
/// lets the range analyses run on a CircuitTape unchanged.
struct MinValueOps {
  double from_parameter(double v) const { return v; }
  double from_indicator(bool one) const { return one ? 1.0 : 0.0; }
  double add(double a, double b) const { return min_positive(a, b); }
  double mul(double a, double b) const { return a * b; }
  double max(double a, double b) const { return min_positive(a, b); }

  static double min_positive(double a, double b) {
    if (a > 0.0 && b > 0.0) return a < b ? a : b;
    return a > 0.0 ? a : b;
  }
};

struct RangeAnalysis {
  std::vector<double> max_value;  ///< per node: largest attainable value
  std::vector<double> min_value;  ///< per node: smallest positive attainable value
  double root_max = 0.0;
  double root_min = 0.0;
};

/// Per-node maxima (all indicators 1).
std::vector<double> max_value_analysis(const Circuit& circuit);

/// Per-node smallest positive values (all indicators 1, adders -> min).
std::vector<double> min_value_analysis(const Circuit& circuit);

/// Both analyses plus root values.
RangeAnalysis analyze_range(const Circuit& circuit);

}  // namespace problp::ac
