#include "ac/transform.hpp"

namespace problp::ac {

namespace {

NodeId emit_operator(Circuit& out, NodeKind kind, std::vector<NodeId> children,
                     DecompositionStyle style) {
  auto combine = [&](std::vector<NodeId> two) {
    switch (kind) {
      case NodeKind::kSum: return out.add_sum(std::move(two));
      case NodeKind::kProd: return out.add_prod(std::move(two));
      case NodeKind::kMax: return out.add_max(std::move(two));
      default: throw InvalidArgument("emit_operator: not an operator kind");
    }
  };
  if (style == DecompositionStyle::kChain) {
    NodeId acc = children.front();
    for (std::size_t i = 1; i < children.size(); ++i) {
      acc = combine({acc, children[i]});
    }
    return acc;
  }
  // Balanced: reduce adjacent pairs until one node remains.
  std::vector<NodeId> level = std::move(children);
  while (level.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(combine({level[i], level[i + 1]}));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level.front();
}

}  // namespace

BinarizeResult binarize(const Circuit& circuit, DecompositionStyle style) {
  require(circuit.root() != kInvalidNode, "binarize: circuit has no root");
  BinarizeResult out{Circuit(circuit.cardinalities()), {}};
  out.node_map.resize(circuit.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
    const Node& n = circuit.node(static_cast<NodeId>(i));
    NodeId mapped = kInvalidNode;
    switch (n.kind) {
      case NodeKind::kIndicator:
        mapped = out.circuit.add_indicator(n.var, n.state);
        break;
      case NodeKind::kParameter:
        mapped = out.circuit.add_parameter(n.value);
        break;
      default: {
        std::vector<NodeId> children;
        children.reserve(n.children.size());
        for (NodeId c : n.children) children.push_back(out.node_map[static_cast<std::size_t>(c)]);
        mapped = emit_operator(out.circuit, n.kind, std::move(children), style);
        break;
      }
    }
    out.node_map[i] = mapped;
  }
  out.circuit.set_root(out.node_map[static_cast<std::size_t>(circuit.root())]);
  return out;
}

Circuit to_max_circuit(const Circuit& circuit) {
  require(circuit.root() != kInvalidNode, "to_max_circuit: circuit has no root");
  Circuit out(circuit.cardinalities());
  std::vector<NodeId> map(circuit.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
    const Node& n = circuit.node(static_cast<NodeId>(i));
    NodeId mapped = kInvalidNode;
    std::vector<NodeId> children;
    children.reserve(n.children.size());
    for (NodeId c : n.children) children.push_back(map[static_cast<std::size_t>(c)]);
    switch (n.kind) {
      case NodeKind::kIndicator: mapped = out.add_indicator(n.var, n.state); break;
      case NodeKind::kParameter: mapped = out.add_parameter(n.value); break;
      case NodeKind::kSum:
      case NodeKind::kMax: mapped = out.add_max(std::move(children)); break;
      case NodeKind::kProd: mapped = out.add_prod(std::move(children)); break;
    }
    map[i] = mapped;
  }
  out.set_root(map[static_cast<std::size_t>(circuit.root())]);
  return out;
}

}  // namespace problp::ac
