#include "ac/tape_layout.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

namespace problp::ac {

namespace {

/// Operator classes the kernel schedule segments by (ac/kernel_schedule.hpp):
/// homogeneous fanin-2 SUM/PROD/MAX runs, everything else generic.
enum KindClass : int { kClassSum2 = 0, kClassProd2, kClassMax2, kClassGeneric, kNumClasses };

int kind_class(NodeKind kind, std::int32_t fanin) {
  if (fanin != 2) return kClassGeneric;
  switch (kind) {
    case NodeKind::kSum:
      return kClassSum2;
    case NodeKind::kProd:
      return kClassProd2;
    case NodeKind::kMax:
      return kClassMax2;
    default:
      return kClassGeneric;  // leaves never appear in op schedules
  }
}

/// How far past the most-urgent ready op the scheduler may reach to extend
/// the current homogeneous run.  0 reproduces pure DFS priority order — best
/// liveness but the shortest runs (45k segments on the 96k-op synthetic VE
/// tape, i.e. the per-segment dispatch overhead on every other op); unbounded
/// drags whole layers of one kind together and blows max-live back toward the
/// identity layout's footprint (46 segments but 23.8k slots on the same
/// tape).  1024 sits on the measured knee: 1.2k segments at 9.9k slots — run
/// lengths long enough to amortise the fanin-2 kernel set-up while the live
/// frontier stays within ~2% of the liveness-optimal 9.7k.  Scaled down with
/// the op count (num_ops / 8) so small tapes — cache-resident at any layout,
/// with too few segments for dispatch overhead to matter — keep the tight
/// liveness schedule instead of dragging whole layers together.
constexpr std::int32_t kKindWindow = 1024;

double mean_reuse_distance(const CircuitTape& tape, const std::vector<std::int32_t>& pos_of) {
  const auto& offsets = tape.child_offsets();
  const auto& children = tape.children();
  double total = 0.0;
  std::size_t edges = 0;
  for (const NodeId id : tape.op_ids()) {
    const std::size_t i = static_cast<std::size_t>(id);
    for (std::int32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      const NodeId c = children[static_cast<std::size_t>(k)];
      if (pos_of[static_cast<std::size_t>(c)] < 0) continue;  // leaf operand
      total += pos_of[static_cast<std::size_t>(i)] - pos_of[static_cast<std::size_t>(c)];
      ++edges;
    }
  }
  return edges == 0 ? 0.0 : total / static_cast<double>(edges);
}

/// Fanin-2 run statistics of one operator order: run count and a log2
/// run-length histogram (runs break on kind changes and on generic ops).
/// Order is any contiguous NodeId range (vector or ArrayStore).
template <class Order>
void fanin2_runs(const CircuitTape& tape, const Order& order,
                 std::size_t& num_runs, std::vector<std::size_t>* hist) {
  const auto& kinds = tape.kinds();
  const auto& offsets = tape.child_offsets();
  num_runs = 0;
  int prev_class = kClassGeneric;
  std::size_t run_len = 0;
  const auto flush = [&] {
    if (run_len == 0) return;
    ++num_runs;
    if (hist != nullptr) {
      std::size_t bucket = 0;
      while ((std::size_t{2} << bucket) <= run_len) ++bucket;
      if (hist->size() <= bucket) hist->resize(bucket + 1, 0);
      ++(*hist)[bucket];
    }
    run_len = 0;
  };
  for (const NodeId id : order) {
    const std::size_t i = static_cast<std::size_t>(id);
    const int cls = kind_class(kinds[i], offsets[i + 1] - offsets[i]);
    if (cls == kClassGeneric) {
      flush();
      prev_class = kClassGeneric;
      continue;
    }
    if (cls != prev_class) flush();
    ++run_len;
    prev_class = cls;
  }
  flush();
}

}  // namespace

TapeLayout TapeLayout::compile(const CircuitTape& tape) {
  const auto& kinds = tape.kinds();
  const auto& offsets = tape.child_offsets();
  const auto& children = tape.children();
  const auto& ops = tape.op_ids();
  const std::size_t n = tape.num_nodes();
  const std::size_t num_ops = ops.size();

  TapeLayout layout;
  // Built in owned vectors, moved into the (possibly view-backed elsewhere)
  // ArrayStore members at the end.
  std::vector<NodeId> op_order;
  std::vector<std::int32_t> slot_of;
  op_order.reserve(num_ops);
  slot_of.assign(n, -1);

  // Node -> position in the original operator schedule (-1 for leaves).
  std::vector<std::int32_t> orig_pos(n, -1);
  for (std::size_t p = 0; p < num_ops; ++p) {
    orig_pos[static_cast<std::size_t>(ops[p])] = static_cast<std::int32_t>(p);
  }

  // ---- (a) DFS priorities ---------------------------------------------------
  // Postorder from the root, visiting children in stored (fold) order:
  // scheduling ready ops by ascending priority reproduces this postorder,
  // which keeps each operand's consumers close behind its producer.
  // Ops the root never reaches still execute (the generic engines run the
  // whole schedule, and their sticky flags are observable) — they get
  // trailing priorities in arena order.
  std::vector<std::int32_t> prio(num_ops, -1);  // indexed by original position
  std::int32_t next_prio = 0;
  if (orig_pos[static_cast<std::size_t>(tape.root())] >= 0) {
    // Iterative postorder; `cursor` is the next child edge to descend into.
    std::vector<std::pair<NodeId, std::int32_t>> stack;
    stack.emplace_back(tape.root(), 0);
    while (!stack.empty()) {
      auto& [id, cursor] = stack.back();
      const std::size_t i = static_cast<std::size_t>(id);
      if (cursor == 0 && prio[static_cast<std::size_t>(orig_pos[i])] >= 0) {
        stack.pop_back();  // already numbered via another parent
        continue;
      }
      bool descended = false;
      while (cursor < offsets[i + 1] - offsets[i]) {
        const NodeId c = children[static_cast<std::size_t>(offsets[i] + cursor)];
        ++cursor;
        const std::int32_t cp = orig_pos[static_cast<std::size_t>(c)];
        if (cp >= 0 && prio[static_cast<std::size_t>(cp)] < 0) {
          stack.emplace_back(c, 0);
          descended = true;
          break;
        }
      }
      if (descended) continue;
      prio[static_cast<std::size_t>(orig_pos[i])] = next_prio++;
      stack.pop_back();
    }
  }
  for (std::size_t p = 0; p < num_ops; ++p) {
    if (prio[p] < 0) prio[p] = next_prio++;
  }

  // ---- (b) list scheduling with a bounded same-kind preference --------------
  // Dependency counts over operand occurrences (duplicate children count
  // twice and are released twice — only the total matters) and a CSR of
  // op -> consuming-op edges for the release walk.
  std::vector<std::int32_t> pending(num_ops, 0);
  std::vector<std::int32_t> consumer_offsets(num_ops + 1, 0);
  for (std::size_t p = 0; p < num_ops; ++p) {
    const std::size_t i = static_cast<std::size_t>(ops[p]);
    for (std::int32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      const std::int32_t cp = orig_pos[static_cast<std::size_t>(
          children[static_cast<std::size_t>(k)])];
      if (cp < 0) continue;  // leaf operand: always ready
      ++pending[p];
      ++consumer_offsets[static_cast<std::size_t>(cp) + 1];
    }
  }
  for (std::size_t p = 0; p < num_ops; ++p) consumer_offsets[p + 1] += consumer_offsets[p];
  std::vector<std::int32_t> consumers(static_cast<std::size_t>(consumer_offsets[num_ops]));
  {
    std::vector<std::int32_t> cursor(consumer_offsets.begin(), consumer_offsets.end() - 1);
    for (std::size_t p = 0; p < num_ops; ++p) {
      const std::size_t i = static_cast<std::size_t>(ops[p]);
      for (std::int32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
        const std::int32_t cp = orig_pos[static_cast<std::size_t>(
            children[static_cast<std::size_t>(k)])];
        if (cp < 0) continue;
        consumers[static_cast<std::size_t>(cursor[static_cast<std::size_t>(cp)]++)] =
            static_cast<std::int32_t>(p);
      }
    }
  }

  // One ready min-heap (by priority) per kernel class.  Entries are
  // (priority, original position); each op is pushed exactly once.
  using Entry = std::pair<std::int32_t, std::int32_t>;
  using Heap = std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>;
  Heap ready[kNumClasses];
  const auto class_of = [&](std::size_t p) {
    const std::size_t i = static_cast<std::size_t>(ops[p]);
    return kind_class(kinds[i], offsets[i + 1] - offsets[i]);
  };
  for (std::size_t p = 0; p < num_ops; ++p) {
    if (pending[p] == 0) ready[class_of(p)].emplace(prio[p], static_cast<std::int32_t>(p));
  }

  const std::int32_t window =
      std::min<std::int32_t>(kKindWindow, static_cast<std::int32_t>(num_ops / 8));
  int current_class = kClassGeneric;
  while (op_order.size() < num_ops) {
    // The most urgent ready op across all classes...
    std::int32_t min_prio = std::numeric_limits<std::int32_t>::max();
    int min_class = -1;
    for (int c = 0; c < kNumClasses; ++c) {
      if (!ready[c].empty() && ready[c].top().first < min_prio) {
        min_prio = ready[c].top().first;
        min_class = c;
      }
    }
    // ...unless the current run can continue within the priority window
    // (generic runs too: fewer segments means fewer per-block loop set-ups).
    int pick = min_class;
    if (!ready[current_class].empty() &&
        ready[current_class].top().first <= min_prio + window) {
      pick = current_class;
    }
    const std::int32_t p = ready[pick].top().second;
    ready[pick].pop();
    current_class = pick;
    op_order.push_back(ops[static_cast<std::size_t>(p)]);
    for (std::int32_t k = consumer_offsets[static_cast<std::size_t>(p)];
         k < consumer_offsets[static_cast<std::size_t>(p) + 1]; ++k) {
      const std::size_t parent = static_cast<std::size_t>(consumers[static_cast<std::size_t>(k)]);
      if (--pending[parent] == 0) {
        ready[class_of(parent)].emplace(prio[parent], static_cast<std::int32_t>(parent));
      }
    }
  }

  // ---- (c) liveness + linear-scan slot allocation ---------------------------
  // Leaves are all initialised before the sweep (parameter broadcast +
  // indicator scatter), so they interfere pairwise and keep pinned slots
  // [0, num_leaves) in id order.  Operator results get pool slots recycled
  // the position after their last consumer — never at the consumer itself,
  // so an op's output row can't alias its own operands (the kernels'
  // __restrict contract).
  std::int32_t num_leaves = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (orig_pos[i] < 0) slot_of[i] = num_leaves++;
  }

  std::vector<std::int32_t> new_pos(n, -1);
  for (std::size_t p = 0; p < num_ops; ++p) {
    new_pos[static_cast<std::size_t>(op_order[p])] = static_cast<std::int32_t>(p);
  }
  // Last consumer position per op value, in the new order; the root is held
  // past the end (its row is the output gather).
  std::vector<std::int32_t> last_use(n, -1);
  for (std::size_t p = 0; p < num_ops; ++p) {
    const std::size_t i = static_cast<std::size_t>(op_order[p]);
    for (std::int32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      const std::size_t c = static_cast<std::size_t>(children[static_cast<std::size_t>(k)]);
      last_use[c] = std::max(last_use[c], static_cast<std::int32_t>(p));
    }
  }
  last_use[static_cast<std::size_t>(tape.root())] = static_cast<std::int32_t>(num_ops);

  std::vector<std::vector<std::int32_t>> freed_at(num_ops + 1);
  std::vector<std::int32_t> free_slots;  // LIFO: the hottest row is reused first
  std::int32_t next_slot = num_leaves;
  for (std::size_t p = 0; p < num_ops; ++p) {
    for (const std::int32_t s : freed_at[p]) free_slots.push_back(s);
    const std::size_t i = static_cast<std::size_t>(op_order[p]);
    std::int32_t slot;
    if (free_slots.empty()) {
      slot = next_slot++;
    } else {
      slot = free_slots.back();
      free_slots.pop_back();
    }
    slot_of[i] = slot;
    // Free position: one past the last consumer; a result nobody reads
    // (an op the root never reaches) frees immediately after executing.
    const std::int32_t free_pos = std::max(last_use[i], static_cast<std::int32_t>(p)) + 1;
    if (free_pos <= static_cast<std::int32_t>(num_ops)) {
      freed_at[static_cast<std::size_t>(free_pos)].push_back(slot);
    }
  }

  // ---- stats ----------------------------------------------------------------
  TapeLayoutStats& stats = layout.stats_;
  stats.num_nodes = n;
  stats.num_leaves = static_cast<std::size_t>(num_leaves);
  stats.num_ops = num_ops;
  stats.num_slots = static_cast<std::size_t>(next_slot);
  stats.max_live = stats.num_slots;
  stats.slots_saved = n - stats.num_slots;
  stats.mean_reuse_distance = mean_reuse_distance(tape, new_pos);
  stats.mean_reuse_distance_original = mean_reuse_distance(tape, orig_pos);
  fanin2_runs(tape, op_order, stats.num_fanin2_runs, &stats.fanin2_run_hist);
  fanin2_runs(tape, ops, stats.num_fanin2_runs_original, nullptr);
  layout.op_order_ = std::move(op_order);
  layout.slot_of_ = std::move(slot_of);
  return layout;
}

TapeLayout TapeLayout::adopt(util::ArrayStore<NodeId> op_order,
                             util::ArrayStore<std::int32_t> slot_of, TapeLayoutStats stats) {
  require(op_order.size() == stats.num_ops,
          "TapeLayout::adopt: op_order size disagrees with stats.num_ops");
  require(slot_of.size() == stats.num_nodes,
          "TapeLayout::adopt: slot_of size disagrees with stats.num_nodes");
  require(stats.num_slots == stats.max_live && stats.num_slots <= stats.num_nodes,
          "TapeLayout::adopt: inconsistent slot counts");
  TapeLayout layout;
  layout.op_order_ = std::move(op_order);
  layout.slot_of_ = std::move(slot_of);
  layout.stats_ = std::move(stats);
  return layout;
}

}  // namespace problp::ac
