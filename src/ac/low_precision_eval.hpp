// Evaluating a circuit with emulated low-precision arithmetic — the
// "measured" side of every experiment: parameters are quantised once, then
// every adder/multiplier rounds exactly the way the generated hardware would.
#pragma once

#include "ac/evaluator.hpp"
#include "lowprec/fixed_point.hpp"
#include "lowprec/soft_float.hpp"

namespace problp::ac {

struct LowPrecisionResult {
  double value = 0.0;             ///< root value, widened back to double
  lowprec::ArithFlags flags;      ///< overflow/underflow seen anywhere in the sweep
};

/// Fixed-point evaluation of the whole circuit.
LowPrecisionResult evaluate_fixed(const Circuit& circuit, const PartialAssignment& assignment,
                                  lowprec::FixedFormat format,
                                  lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven);

/// Floating-point evaluation of the whole circuit.
LowPrecisionResult evaluate_float(const Circuit& circuit, const PartialAssignment& assignment,
                                  lowprec::FloatFormat format,
                                  lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven);

}  // namespace problp::ac
