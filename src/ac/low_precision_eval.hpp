// Evaluating a circuit with emulated low-precision arithmetic — the
// "measured" side of every experiment: parameters are quantised once, then
// every adder/multiplier rounds exactly the way the generated hardware would.
#pragma once

#include "ac/evaluator.hpp"
#include "ac/number_ops.hpp"
#include "ac/tape.hpp"
#include "lowprec/fixed_point.hpp"
#include "lowprec/soft_float.hpp"

namespace problp::ac {

struct LowPrecisionResult {
  double value = 0.0;             ///< root value, widened back to double
  lowprec::ArithFlags flags;      ///< overflow/underflow seen anywhere in the sweep
};

/// Fixed-point evaluation of the whole circuit.
LowPrecisionResult evaluate_fixed(const Circuit& circuit, const PartialAssignment& assignment,
                                  lowprec::FixedFormat format,
                                  lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven);

/// Floating-point evaluation of the whole circuit.
LowPrecisionResult evaluate_float(const Circuit& circuit, const PartialAssignment& assignment,
                                  lowprec::FloatFormat format,
                                  lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven);

/// Tape-backed low-precision evaluator: the tape is compiled once, every
/// parameter is quantised once at construction, and per-query work shrinks
/// to the indicator resolution plus the operator sweep — the engine the
/// observed-error sweeps (hundreds of queries per format) run on.  `value`
/// and `flags` are bit-identical to the matching one-shot evaluate_* on the
/// source circuit (parameter-quantisation flags are sticky, so folding them
/// in once at construction equals re-raising them every query).
template <class Ops>
class LowPrecisionTapeEvaluator {
 public:
  LowPrecisionTapeEvaluator(const CircuitTape& tape, Ops ops_template)
      : eval_(tape, with_flags(ops_template, &flags_)), param_flags_(flags_) {}

  LowPrecisionTapeEvaluator(const LowPrecisionTapeEvaluator&) = delete;
  LowPrecisionTapeEvaluator& operator=(const LowPrecisionTapeEvaluator&) = delete;

  LowPrecisionResult evaluate(const PartialAssignment& assignment) {
    flags_ = param_flags_;  // conversion flags the cached leaves would raise
    LowPrecisionResult out;
    out.value = eval_.evaluate_root(assignment).to_double();
    out.flags = flags_;
    return out;
  }

  const CircuitTape& tape() const { return eval_.tape(); }

 private:
  static Ops with_flags(Ops ops, lowprec::ArithFlags* flags) {
    ops.flags = flags;
    return ops;
  }

  lowprec::ArithFlags flags_;    ///< live sweep target; must precede eval_
  TapeEvaluator<Ops> eval_;      ///< quantises parameters at construction
  lowprec::ArithFlags param_flags_;
};

/// Fixed-point engine over a compiled tape.
class FixedTapeEvaluator : public LowPrecisionTapeEvaluator<FixedOps> {
 public:
  FixedTapeEvaluator(const CircuitTape& tape, lowprec::FixedFormat format,
                     lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven)
      : LowPrecisionTapeEvaluator(tape, FixedOps{validated(format), mode, nullptr}) {}

 private:
  static lowprec::FixedFormat validated(lowprec::FixedFormat f) {
    f.validate();
    return f;
  }
};

/// Float-point engine over a compiled tape.
class FloatTapeEvaluator : public LowPrecisionTapeEvaluator<FloatOps> {
 public:
  FloatTapeEvaluator(const CircuitTape& tape, lowprec::FloatFormat format,
                     lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven)
      : LowPrecisionTapeEvaluator(tape, FloatOps{validated(format), mode, nullptr}) {}

 private:
  static lowprec::FloatFormat validated(lowprec::FloatFormat f) {
    f.validate();
    return f;
  }
};

}  // namespace problp::ac
