// Plain-text persistence for circuits, so compiled ACs can be cached,
// diffed, and shipped between tools.  The format is line-oriented:
//
//   problp-ac 1
//   vars <n> <card_0> ... <card_{n-1}>
//   nodes <count>
//   lambda <var> <state>
//   theta <value (%.17g)>
//   sum|prod|max <k> <child_0> ... <child_{k-1}>
//   root <id>
//
// Node ids are implicit line positions.  Loading rebuilds through the
// builder, so structurally duplicate nodes may be shared; semantics (values
// computed for every assignment) round-trip exactly.
#pragma once

#include <string>

#include "ac/circuit.hpp"

namespace problp::ac {

std::string to_text(const Circuit& circuit);
Circuit from_text(const std::string& text);

void save_circuit(const Circuit& circuit, const std::string& path);
Circuit load_circuit(const std::string& path);

}  // namespace problp::ac
