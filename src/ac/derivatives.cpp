#include "ac/derivatives.hpp"

namespace problp::ac {

DifferentialResult evaluate_with_derivatives(const Circuit& circuit,
                                             const PartialAssignment& assignment) {
  require(circuit.root() != kInvalidNode, "evaluate_with_derivatives: no root");
  require(circuit.is_binary(), "evaluate_with_derivatives: circuit must be binary");

  DifferentialResult out;
  out.value = evaluate_all_double(circuit, assignment);
  out.root_value = out.value[static_cast<std::size_t>(circuit.root())];
  out.derivative.assign(circuit.num_nodes(), 0.0);
  out.derivative[static_cast<std::size_t>(circuit.root())] = 1.0;

  // Downward sweep: parents have larger ids than children, so a reverse
  // arena walk visits every parent before its children.
  for (std::size_t i = circuit.num_nodes(); i > 0; --i) {
    const Node& n = circuit.node(static_cast<NodeId>(i - 1));
    const double d = out.derivative[i - 1];
    if (d == 0.0 || n.is_leaf()) continue;
    switch (n.kind) {
      case NodeKind::kSum:
        for (NodeId c : n.children) out.derivative[static_cast<std::size_t>(c)] += d;
        break;
      case NodeKind::kProd: {
        // Binary product: each child's derivative picks up the other child's
        // value (no division, so zero-valued children are handled exactly).
        const auto a = static_cast<std::size_t>(n.children[0]);
        if (n.children.size() == 1) {
          out.derivative[a] += d;
          break;
        }
        const auto b = static_cast<std::size_t>(n.children[1]);
        out.derivative[a] += d * out.value[b];
        out.derivative[b] += d * out.value[a];
        break;
      }
      case NodeKind::kMax:
        throw InvalidArgument("evaluate_with_derivatives: MAX nodes are not differentiable");
      default:
        break;
    }
  }
  return out;
}

std::vector<std::vector<double>> all_joint_marginals(const Circuit& circuit,
                                                     const PartialAssignment& assignment) {
  const DifferentialResult r = evaluate_with_derivatives(circuit, assignment);
  std::vector<std::vector<double>> out;
  out.reserve(circuit.cardinalities().size());
  for (int v = 0; v < circuit.num_variables(); ++v) {
    const int card = circuit.cardinalities()[static_cast<std::size_t>(v)];
    std::vector<double> per_state(static_cast<std::size_t>(card), 0.0);
    for (int s = 0; s < card; ++s) {
      const NodeId id = circuit.find_indicator(v, s);
      // Indicators absent from the circuit cannot influence the root; their
      // marginal equals the plain evidence probability when consistent.
      per_state[static_cast<std::size_t>(s)] =
          (id == kInvalidNode) ? (indicator_is_one(assignment, v, s) ? r.root_value : 0.0)
                               : r.derivative[static_cast<std::size_t>(id)];
    }
    out.push_back(std::move(per_state));
  }
  return out;
}

std::vector<double> posterior_from_derivatives(const Circuit& circuit, int query_var,
                                               const PartialAssignment& assignment) {
  require(query_var >= 0 && query_var < circuit.num_variables(),
          "posterior_from_derivatives: bad query var");
  require(!assignment[static_cast<std::size_t>(query_var)].has_value(),
          "posterior_from_derivatives: query variable must be unobserved");
  const auto marginals = all_joint_marginals(circuit, assignment);
  const auto& joint = marginals[static_cast<std::size_t>(query_var)];
  double total = 0.0;
  for (double p : joint) total += p;
  require(total > 0.0, "posterior_from_derivatives: evidence has zero probability");
  std::vector<double> out;
  out.reserve(joint.size());
  for (double p : joint) out.push_back(p / total);
  return out;
}

}  // namespace problp::ac
