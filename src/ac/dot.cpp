#include "ac/dot.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace problp::ac {

std::string to_dot(const Circuit& circuit, const std::vector<std::string>& variable_names) {
  std::ostringstream os;
  os << "digraph ac {\n  rankdir=BT;\n  node [fontsize=10];\n";
  for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
    const Node& n = circuit.node(static_cast<NodeId>(i));
    std::string label;
    std::string shape = "ellipse";
    switch (n.kind) {
      case NodeKind::kSum: label = "+"; shape = "circle"; break;
      case NodeKind::kProd: label = "*"; shape = "circle"; break;
      case NodeKind::kMax: label = "max"; shape = "circle"; break;
      case NodeKind::kIndicator: {
        const std::string var =
            (static_cast<std::size_t>(n.var) < variable_names.size())
                ? variable_names[static_cast<std::size_t>(n.var)]
                : str_format("X%d", n.var);
        label = str_format("&lambda;_%s=%d", var.c_str(), n.state);
        shape = "box";
        break;
      }
      case NodeKind::kParameter:
        label = str_format("&theta;=%.4g", n.value);
        shape = "box";
        break;
    }
    os << "  n" << i << " [label=\"" << label << "\", shape=" << shape;
    if (static_cast<NodeId>(i) == circuit.root()) os << ", style=bold";
    os << "];\n";
  }
  for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
    for (NodeId c : circuit.node(static_cast<NodeId>(i)).children) {
      os << "  n" << c << " -> n" << i << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace problp::ac
