// Cache-shaped tape re-layout — the compile-time scheduling/allocation pass
// behind the batched engines' O(max-live) SoA buffers.
//
// The batched sweeps (ac/batch_eval.hpp, ac/batch_lowprec.hpp) give every
// tape node its own SoA row, so the per-block working set is
// O(num_nodes) * W slots.  Small circuits stay L2-resident and the fanin-2
// kernels run compute-bound; big compiler-emitted circuits (synthetic_ve36:
// 97k nodes, ~6 MiB of rows at W = 8) spill to DRAM and every kernel
// becomes a gather.  But almost every intermediate value is consumed a
// couple of ops after it is produced and then never read again — the live
// frontier of a VE/NB-compiled circuit is tiny compared to the circuit.
//
// A TapeLayout is computed once per tape (CircuitTape::compile attaches one
// eagerly) and rewrites the *memory shape* of the sweep without changing a
// single arithmetic result:
//
//  * op reordering (DFS-priority list scheduling): the operator schedule is
//    re-emitted in an order that still respects every data dependency but
//    follows a depth-first priority from the root, so operands are consumed
//    soon after they are produced (short reuse distance).  A bounded
//    same-kind preference window additionally merges interleaved SUM/PROD
//    ops of equal depth into longer homogeneous fanin-2 runs — the shape
//    the SIMD kernel schedule executes without per-op dispatch — while the
//    window bound keeps the liveness cost of that greed small;
//
//  * liveness analysis + linear-scan slot allocation: every leaf keeps a
//    pinned slot (leaves are initialised before the sweep, so they are all
//    live at once), while operator results are assigned recycled slots the
//    moment their last consumer has executed (most-recently-freed first, so
//    a reused slot is still cache-hot).  The value buffer shrinks from
//    num_nodes rows to num_slots() = num_leaves + max-live-ops rows — for
//    synthetic_ve36 that is the difference between DRAM and L2 residency.
//
// Bit-identity is by construction: the same ops compute the same operand
// values in a dependency-respecting order (sticky ArithFlags are ORs, so
// their fold order is immaterial), only the rows they live in are renamed.
// An op's output slot is never the slot of one of its own operands (a value
// dying at op p is recycled only from p+1 on), which preserves the
// no-aliasing contract the __restrict kernels rely on.
//
// Consumers thread the slot remap through KernelSchedule::compile(tape,
// layout) — which emits out/lhs/rhs and the generic fallback arrays in slot
// space — and through the engines' leaf scatter / indicator zeroing / root
// gather paths.  Options::relayout (default on) selects the pass;
// relayout-off keeps the O(nodes) identity layout as the parity and
// trajectory reference.  See docs/evaluation.md.
#pragma once

#include <cstdint>
#include <vector>

#include "ac/tape.hpp"
#include "util/array_store.hpp"

namespace problp::ac {

/// Inspectable report of what the pass did to one tape — the win is
/// measured, not asserted (bench_eval_throughput records the memory shape
/// per row; docs/evaluation.md shows the ve36 numbers).
struct TapeLayoutStats {
  std::size_t num_nodes = 0;   ///< tape nodes (leaves + operators)
  std::size_t num_leaves = 0;  ///< pinned leaf slots (parameters + indicators)
  std::size_t num_ops = 0;     ///< scheduled operators
  /// Peak simultaneously-live values = SoA rows after the pass
  /// (num_leaves + the operator pool's high-water mark).
  std::size_t max_live = 0;
  std::size_t num_slots = 0;    ///< == max_live: rows the batched buffers allocate
  std::size_t slots_saved = 0;  ///< num_nodes - num_slots
  /// Mean operand reuse distance in schedule positions over op->op edges,
  /// after re-ordering and in the original arena order.
  double mean_reuse_distance = 0.0;
  double mean_reuse_distance_original = 0.0;
  /// Homogeneous fanin-2 run-length histogram of the re-ordered schedule:
  /// bucket k counts runs of length in [2^k, 2^(k+1)).
  std::vector<std::size_t> fanin2_run_hist;
  std::size_t num_fanin2_runs = 0;           ///< runs after re-ordering
  std::size_t num_fanin2_runs_original = 0;  ///< runs in arena order
};

class TapeLayout {
 public:
  /// Schedules and slot-allocates `tape`.  O((nodes + edges) log nodes);
  /// the result is immutable and shared by every evaluator of the tape.
  static TapeLayout compile(const CircuitTape& tape);

  /// Rehydrates a layout from already-computed arrays — the zero-copy
  /// artifact seam (runtime/artifact.hpp): the stores may be views into a
  /// mapped file, which the caller keeps alive for the layout's lifetime.
  /// Only cheap shape invariants are re-checked; the arrays are trusted to
  /// be a compile() result (the artifact layer checksums them).
  static TapeLayout adopt(util::ArrayStore<NodeId> op_order,
                          util::ArrayStore<std::int32_t> slot_of, TapeLayoutStats stats);

  /// The re-ordered operator schedule: node ids, a dependency-respecting
  /// permutation of tape.op_ids().
  const util::ArrayStore<NodeId>& op_order() const { return op_order_; }

  /// Node id -> SoA row (slot).  Total function over the tape's nodes;
  /// leaves map to [0, num_leaves) in id order, operators share the
  /// recycled pool above it.
  const util::ArrayStore<std::int32_t>& slot_of() const { return slot_of_; }

  /// Rows a batched value buffer needs under this layout (== max-live).
  std::size_t num_slots() const { return stats_.num_slots; }

  const TapeLayoutStats& stats() const { return stats_; }

 private:
  TapeLayout() = default;

  util::ArrayStore<NodeId> op_order_;
  util::ArrayStore<std::int32_t> slot_of_;
  TapeLayoutStats stats_;
};

}  // namespace problp::ac
