#include "ac/serialize.hpp"

#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace problp::ac {

std::string to_text(const Circuit& circuit) {
  require(circuit.root() != kInvalidNode, "to_text: circuit has no root");
  std::ostringstream os;
  os << "problp-ac 1\n";
  os << "vars " << circuit.num_variables();
  for (int c : circuit.cardinalities()) os << ' ' << c;
  os << "\nnodes " << circuit.num_nodes() << "\n";
  os.precision(17);
  for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
    const Node& n = circuit.node(static_cast<NodeId>(i));
    switch (n.kind) {
      case NodeKind::kIndicator:
        os << "lambda " << n.var << ' ' << n.state << "\n";
        break;
      case NodeKind::kParameter:
        os << "theta " << n.value << "\n";
        break;
      default:
        os << to_string(n.kind) << ' ' << n.children.size();
        for (NodeId c : n.children) os << ' ' << c;
        os << "\n";
        break;
    }
  }
  os << "root " << circuit.root() << "\n";
  return os.str();
}

Circuit from_text(const std::string& text) {
  std::istringstream is(text);
  std::string word;
  auto expect = [&](const std::string& w) {
    is >> word;
    if (word != w) throw ParseError("circuit load: expected '" + w + "', got '" + word + "'");
  };
  expect("problp-ac");
  int version = 0;
  is >> version;
  if (version != 1) throw ParseError("circuit load: unsupported version");
  expect("vars");
  int nvars = 0;
  is >> nvars;
  if (nvars < 0) throw ParseError("circuit load: bad variable count");
  std::vector<int> cards(static_cast<std::size_t>(nvars));
  for (int& c : cards) is >> c;
  Circuit out(cards);
  expect("nodes");
  std::size_t count = 0;
  is >> count;
  std::vector<NodeId> map(count, kInvalidNode);
  for (std::size_t i = 0; i < count; ++i) {
    is >> word;
    if (!is.good()) throw ParseError("circuit load: truncated node list");
    if (word == "lambda") {
      int var = -1;
      int state = -1;
      is >> var >> state;
      map[i] = out.add_indicator(var, state);
    } else if (word == "theta") {
      double v = 0.0;
      is >> v;
      map[i] = out.add_parameter(v);
    } else if (word == "sum" || word == "prod" || word == "max") {
      std::size_t k = 0;
      is >> k;
      std::vector<NodeId> children(k);
      for (auto& c : children) {
        long idx = -1;
        is >> idx;
        if (idx < 0 || static_cast<std::size_t>(idx) >= i) {
          throw ParseError("circuit load: child id out of range");
        }
        c = map[static_cast<std::size_t>(idx)];
      }
      if (word == "sum") {
        map[i] = out.add_sum(std::move(children));
      } else if (word == "prod") {
        map[i] = out.add_prod(std::move(children));
      } else {
        map[i] = out.add_max(std::move(children));
      }
    } else {
      throw ParseError("circuit load: unknown node kind '" + word + "'");
    }
  }
  expect("root");
  long root = -1;
  is >> root;
  if (root < 0 || static_cast<std::size_t>(root) >= count) {
    throw ParseError("circuit load: bad root id");
  }
  out.set_root(map[static_cast<std::size_t>(root)]);
  return out;
}

void save_circuit(const Circuit& circuit, const std::string& path) {
  std::ofstream f(path);
  require(f.good(), "save_circuit: cannot open '" + path + "'");
  f << to_text(circuit);
}

Circuit load_circuit(const std::string& path) {
  std::ifstream f(path);
  require(f.good(), "load_circuit: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  return from_text(buf.str());
}

}  // namespace problp::ac
