// AVX-512 kernel unit: compiled with -mavx512f -mprefer-vector-width=512
// (see CMakeLists.txt), so the W = 8 inner loops below become one 512-bit
// zmm op per chunk.  The distinct Avx512Tag keeps every template
// instantiation a symbol unique to this unit.  Reached only through the
// runtime dispatch in simd_sweep.cpp, which gates on cpuid.
#ifdef PROBLP_SIMD_TU_AVX512

#include "ac/simd_sweep_impl.hpp"

namespace problp::ac::simd {

namespace {
struct Avx512Tag {};
}  // namespace

void exact_sweep_avx512(const CircuitTape& tape, const KernelSchedule& schedule, double* buf,
                        std::size_t w) {
  detail::run_exact_schedule<8, Avx512Tag>(tape, schedule, buf, w);
}

void fixed_sweep_avx512(const CircuitTape& tape, const KernelSchedule& schedule,
                        std::uint64_t* buf, std::uint64_t* ovf, std::size_t w,
                        const FixedSweepParams& params) {
  detail::run_fixed_schedule<8, Avx512Tag>(tape, schedule, buf, ovf, w, params);
}

}  // namespace problp::ac::simd

#endif  // PROBLP_SIMD_TU_AVX512
