// AVX-512 kernel unit: compiled with -mavx512f -mprefer-vector-width=512
// (see CMakeLists.txt), so the W = 8 inner loops below become one 512-bit
// zmm op per chunk.  The distinct Avx512Tag keeps every template
// instantiation a symbol unique to this unit.  Reached only through the
// runtime dispatch in simd_sweep.cpp, which gates on cpuid.
#ifdef PROBLP_SIMD_TU_AVX512

#include <immintrin.h>

#include "ac/simd_sweep_impl.hpp"

namespace problp::ac::simd {

namespace {
struct Avx512Tag {};
}  // namespace

namespace detail {

/// Hand-scheduled Prod2 run for the u32 fixed lanes (see the FixedMulRun
/// primary template for why): one vpmuludq per 8-lane half — the operands
/// are zero-extended, so the 32x32 low-half product IS the exact u64
/// product — instead of GCC 12's three-multiply 64x64 lowering.  Each step
/// replays lowprec::fx_mul_raw_u32 exactly: the same carry-bias
/// nearest-even sum, vpmovusqd for the saturating u32 clamp of `kept`, and
/// min + xor-OR for the saturation value and the sticky overflow mask, so
/// the lanes stay bit-identical to the scalar kernel at every width.
template <lowprec::RoundingMode Mode>
struct FixedMulRun<16, Mode, Avx512Tag> {
  static __m512i rounded(__m512i prod, __m128i shift, __m512i bias, __m512i one64) {
    if constexpr (Mode == lowprec::RoundingMode::kNearestEven) {
      const __m512i parity = _mm512_and_si512(_mm512_srl_epi64(prod, shift), one64);
      return _mm512_srl_epi64(_mm512_add_epi64(_mm512_add_epi64(prod, bias), parity), shift);
    } else {
      return _mm512_srl_epi64(prod, shift);
    }
  }

  /// 16 lanes of o[j..j+16) = sat(round(a * b)): loads before stores, so
  /// `o` aliasing `a` (the accumulating generic fold) is well-defined.
  struct Consts {
    __m128i shift;
    __m512i bias, one64, max32;
  };
  static Consts consts(const FixedSweepParams& p) {
    // half - 1 is the nearest-even carry bias; half >= 1 whenever that
    // instantiation runs (run_fixed_schedule routes F == 0 to kTruncate).
    return {_mm_cvtsi32_si128(p.fraction_bits),
            _mm512_set1_epi64(static_cast<long long>(p.half) - 1), _mm512_set1_epi64(1),
            _mm512_set1_epi32(static_cast<int>(p.max_raw))};
  }
  static void chunk16(std::uint32_t* o, const std::uint32_t* a, const std::uint32_t* b,
                      std::uint32_t* ovf, const Consts& c) {
    const __m512i a_lo =
        _mm512_cvtepu32_epi64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a)));
    const __m512i b_lo =
        _mm512_cvtepu32_epi64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(b)));
    const __m512i a_hi =
        _mm512_cvtepu32_epi64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 8)));
    const __m512i b_hi =
        _mm512_cvtepu32_epi64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 8)));
    const __m512i kept_lo = rounded(_mm512_mul_epu32(a_lo, b_lo), c.shift, c.bias, c.one64);
    const __m512i kept_hi = rounded(_mm512_mul_epu32(a_hi, b_hi), c.shift, c.bias, c.one64);
    const __m512i kept32 =
        _mm512_inserti64x4(_mm512_castsi256_si512(_mm512_cvtusepi64_epi32(kept_lo)),
                           _mm512_cvtusepi64_epi32(kept_hi), 1);
    const __m512i sat = _mm512_min_epu32(kept32, c.max32);
    _mm512_storeu_si512(o, sat);
    const __m512i mask = _mm512_loadu_si512(ovf);
    _mm512_storeu_si512(ovf, _mm512_or_si512(mask, _mm512_xor_si512(kept32, sat)));
  }

  static void run(const std::int32_t* out, const std::int32_t* lhs, const std::int32_t* rhs,
                  std::size_t n, std::uint32_t* buf, std::uint32_t* __restrict ovf,
                  std::size_t w, const FixedSweepParams& p) {
    const Consts c = consts(p);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t* __restrict o = buf + static_cast<std::size_t>(out[i]) * w;
      const std::uint32_t* a = buf + static_cast<std::size_t>(lhs[i]) * w;
      const std::uint32_t* b = buf + static_cast<std::size_t>(rhs[i]) * w;
      std::size_t j = 0;
      for (; j + 16 <= w; j += 16) chunk16(o + j, a + j, b + j, ovf + j, c);
      for (; j < w; ++j) {
        o[j] = lowprec::fx_mul_raw_u32<Mode>(a[j], b[j], p.fraction_bits, p.half, p.max_raw,
                                             ovf[j]);
      }
    }
  }

  static void fold(std::uint32_t* o, const std::uint32_t* rhs, std::uint32_t* __restrict ovf,
                   std::size_t w, const FixedSweepParams& p) {
    const Consts c = consts(p);
    std::size_t j = 0;
    for (; j + 16 <= w; j += 16) chunk16(o + j, o + j, rhs + j, ovf + j, c);
    for (; j < w; ++j) {
      o[j] = lowprec::fx_mul_raw_u32<Mode>(o[j], rhs[j], p.fraction_bits, p.half, p.max_raw,
                                           ovf[j]);
    }
  }
};

}  // namespace detail

void exact_sweep_avx512(const KernelSchedule& schedule, double* buf, std::size_t w) {
  detail::run_exact_schedule<8, Avx512Tag>(schedule, buf, w);
}

// The u32 fixed-point lanes pack 16 per zmm — twice the exact sweep's W.
void fixed_sweep_avx512(const KernelSchedule& schedule, std::uint32_t* buf,
                        std::uint32_t* ovf, std::size_t w, const FixedSweepParams& params) {
  detail::run_fixed_schedule<16, Avx512Tag>(schedule, buf, ovf, w, params);
}

// Decomposed float lanes: i32 exponents + u32/u64 significands, W matching
// the significand lane count per zmm.  The branch-free lane kernels
// (lowprec/soft_float.hpp) are all blends, variable shifts (vpsrlvd /
// vpsrlvq) and compares, which -mavx512f autovectorises directly.
void float_sweep32_avx512(const KernelSchedule& schedule, std::int32_t* exps,
                          std::uint32_t* sigs, std::uint32_t* ovf, std::uint32_t* und,
                          std::size_t w, const FloatSweepParams& params) {
  detail::run_float_schedule<16, std::uint32_t, Avx512Tag>(schedule, exps, sigs, ovf, und, w,
                                                           params);
}

void float_sweep64_avx512(const KernelSchedule& schedule, std::int32_t* exps,
                          std::uint64_t* sigs, std::uint64_t* ovf, std::uint64_t* und,
                          std::size_t w, const FloatSweepParams& params) {
  detail::run_float_schedule<8, std::uint64_t, Avx512Tag>(schedule, exps, sigs, ovf, und, w,
                                                          params);
}

}  // namespace problp::ac::simd

#endif  // PROBLP_SIMD_TU_AVX512
