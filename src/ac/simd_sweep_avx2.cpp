// AVX2 kernel unit: this file (and only this file) is compiled with -mavx2
// (see CMakeLists.txt), so the W = 4 inner loops below become one 256-bit
// ymm op per chunk.  The distinct Avx2Tag keeps every template instantiation
// a symbol unique to this unit — no other TU's baseline-ISA instantiation
// can be ODR-merged over it.  Reached only through the runtime dispatch in
// simd_sweep.cpp, which gates on cpuid.
#ifdef PROBLP_SIMD_TU_AVX2

#include "ac/simd_sweep_impl.hpp"

namespace problp::ac::simd {

namespace {
struct Avx2Tag {};
}  // namespace

void exact_sweep_avx2(const KernelSchedule& schedule, double* buf, std::size_t w) {
  detail::run_exact_schedule<4, Avx2Tag>(schedule, buf, w);
}

// The u32 fixed-point lanes pack 8 per ymm — twice the exact sweep's W.
void fixed_sweep_avx2(const KernelSchedule& schedule, std::uint32_t* buf, std::uint32_t* ovf,
                      std::size_t w, const FixedSweepParams& params) {
  detail::run_fixed_schedule<8, Avx2Tag>(schedule, buf, ovf, w, params);
}

}  // namespace problp::ac::simd

#endif  // PROBLP_SIMD_TU_AVX2
