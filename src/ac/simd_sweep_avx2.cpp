// AVX2 kernel unit: this file (and only this file) is compiled with -mavx2
// (see CMakeLists.txt), so the W = 4 inner loops below become one 256-bit
// ymm op per chunk.  The distinct Avx2Tag keeps every template instantiation
// a symbol unique to this unit — no other TU's baseline-ISA instantiation
// can be ODR-merged over it.  Reached only through the runtime dispatch in
// simd_sweep.cpp, which gates on cpuid.
#ifdef PROBLP_SIMD_TU_AVX2

#include "ac/simd_sweep_impl.hpp"

namespace problp::ac::simd {

namespace {
struct Avx2Tag {};
}  // namespace

void exact_sweep_avx2(const KernelSchedule& schedule, double* buf, std::size_t w) {
  detail::run_exact_schedule<4, Avx2Tag>(schedule, buf, w);
}

// The u32 fixed-point lanes pack 8 per ymm — twice the exact sweep's W.
void fixed_sweep_avx2(const KernelSchedule& schedule, std::uint32_t* buf, std::uint32_t* ovf,
                      std::size_t w, const FixedSweepParams& params) {
  detail::run_fixed_schedule<8, Avx2Tag>(schedule, buf, ovf, w, params);
}

// Decomposed float lanes: i32 exponents + u32/u64 significands, W matching
// the significand lane count per ymm (AVX2 brings the vpsrlvd/vpsrlvq
// variable shifts the lane kernels' alignment step leans on).
void float_sweep32_avx2(const KernelSchedule& schedule, std::int32_t* exps,
                        std::uint32_t* sigs, std::uint32_t* ovf, std::uint32_t* und,
                        std::size_t w, const FloatSweepParams& params) {
  detail::run_float_schedule<8, std::uint32_t, Avx2Tag>(schedule, exps, sigs, ovf, und, w,
                                                        params);
}

void float_sweep64_avx2(const KernelSchedule& schedule, std::int32_t* exps,
                        std::uint64_t* sigs, std::uint64_t* ovf, std::uint64_t* und,
                        std::size_t w, const FloatSweepParams& params) {
  detail::run_float_schedule<4, std::uint64_t, Avx2Tag>(schedule, exps, sigs, ovf, und, w,
                                                        params);
}

}  // namespace problp::ac::simd

#endif  // PROBLP_SIMD_TU_AVX2
