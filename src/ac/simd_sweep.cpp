#include "ac/simd_sweep.hpp"

#include <cstring>
#include <string>

#include "ac/simd_sweep_impl.hpp"
#include "util/error.hpp"

namespace problp::ac::simd {

namespace {

struct ScalarTag {};

// The scalar level: lane-serial schedule executor at the build's baseline
// ISA.  W = 1 keeps the inner loops genuinely scalar-shaped; whatever the
// baseline autovectoriser does to them is bit-identical anyway.
void exact_sweep_scalar(const KernelSchedule& schedule, double* buf, std::size_t w) {
  detail::run_exact_schedule<1, ScalarTag>(schedule, buf, w);
}

void fixed_sweep_scalar(const KernelSchedule& schedule, std::uint32_t* buf,
                        std::uint32_t* ovf, std::size_t w, const FixedSweepParams& params) {
  detail::run_fixed_schedule<1, ScalarTag>(schedule, buf, ovf, w, params);
}

void float_sweep32_scalar(const KernelSchedule& schedule, std::int32_t* exps,
                          std::uint32_t* sigs, std::uint32_t* ovf, std::uint32_t* und,
                          std::size_t w, const FloatSweepParams& params) {
  detail::run_float_schedule<1, std::uint32_t, ScalarTag>(schedule, exps, sigs, ovf, und, w,
                                                          params);
}

void float_sweep64_scalar(const KernelSchedule& schedule, std::int32_t* exps,
                          std::uint64_t* sigs, std::uint64_t* ovf, std::uint64_t* und,
                          std::size_t w, const FloatSweepParams& params) {
  detail::run_float_schedule<1, std::uint64_t, ScalarTag>(schedule, exps, sigs, ovf, und, w,
                                                          params);
}

}  // namespace

// Defined in the per-ISA translation units (present only when the build
// enables them; the PROBLP_SIMD_TU_* macros come from CMakeLists.txt).
#ifdef PROBLP_SIMD_TU_AVX2
void exact_sweep_avx2(const KernelSchedule& schedule, double* buf, std::size_t w);
void fixed_sweep_avx2(const KernelSchedule& schedule, std::uint32_t* buf, std::uint32_t* ovf,
                      std::size_t w, const FixedSweepParams& params);
void float_sweep32_avx2(const KernelSchedule& schedule, std::int32_t* exps,
                        std::uint32_t* sigs, std::uint32_t* ovf, std::uint32_t* und,
                        std::size_t w, const FloatSweepParams& params);
void float_sweep64_avx2(const KernelSchedule& schedule, std::int32_t* exps,
                        std::uint64_t* sigs, std::uint64_t* ovf, std::uint64_t* und,
                        std::size_t w, const FloatSweepParams& params);
#endif
#ifdef PROBLP_SIMD_TU_AVX512
void exact_sweep_avx512(const KernelSchedule& schedule, double* buf, std::size_t w);
void fixed_sweep_avx512(const KernelSchedule& schedule, std::uint32_t* buf,
                        std::uint32_t* ovf, std::size_t w, const FixedSweepParams& params);
void float_sweep32_avx512(const KernelSchedule& schedule, std::int32_t* exps,
                          std::uint32_t* sigs, std::uint32_t* ovf, std::uint32_t* und,
                          std::size_t w, const FloatSweepParams& params);
void float_sweep64_avx512(const KernelSchedule& schedule, std::int32_t* exps,
                          std::uint64_t* sigs, std::uint64_t* ovf, std::uint64_t* und,
                          std::size_t w, const FloatSweepParams& params);
#endif
#ifdef PROBLP_SIMD_TU_NEON
void exact_sweep_neon(const KernelSchedule& schedule, double* buf, std::size_t w);
void fixed_sweep_neon(const KernelSchedule& schedule, std::uint32_t* buf, std::uint32_t* ovf,
                      std::size_t w, const FixedSweepParams& params);
void float_sweep32_neon(const KernelSchedule& schedule, std::int32_t* exps,
                        std::uint32_t* sigs, std::uint32_t* ovf, std::uint32_t* und,
                        std::size_t w, const FloatSweepParams& params);
void float_sweep64_neon(const KernelSchedule& schedule, std::int32_t* exps,
                        std::uint64_t* sigs, std::uint64_t* ovf, std::uint64_t* und,
                        std::size_t w, const FloatSweepParams& params);
#endif

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kNeon:
      return "neon";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool level_compiled(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kNeon:
#ifdef PROBLP_SIMD_TU_NEON
      return true;
#else
      return false;
#endif
    case Level::kAvx2:
#ifdef PROBLP_SIMD_TU_AVX2
      return true;
#else
      return false;
#endif
    case Level::kAvx512:
#ifdef PROBLP_SIMD_TU_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

namespace {

bool cpu_supports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kNeon:
      // The NEON unit only exists on aarch64 builds, where NEON is baseline.
      return level_compiled(Level::kNeon);
    case Level::kAvx2:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kAvx512:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

Level best_level() {
  for (const Level level : {Level::kAvx512, Level::kAvx2, Level::kNeon}) {
    if (level_supported(level)) return level;
  }
  return Level::kScalar;
}

}  // namespace

bool level_supported(Level level) { return level_compiled(level) && cpu_supports(level); }

std::vector<Level> supported_levels() {
  std::vector<Level> out;
  for (const Level level : {Level::kScalar, Level::kNeon, Level::kAvx2, Level::kAvx512}) {
    if (level_supported(level)) out.push_back(level);
  }
  return out;
}

Level dispatch_level() {
  const char* env = std::getenv("PROBLP_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) return best_level();
  for (const Level level : {Level::kScalar, Level::kNeon, Level::kAvx2, Level::kAvx512}) {
    if (std::strcmp(env, level_name(level)) == 0) {
      require(level_supported(level), std::string("PROBLP_SIMD=") + env +
                                          ": level not supported by this build/CPU");
      return level;
    }
  }
  throw InvalidArgument(std::string("PROBLP_SIMD=") + env +
                        ": expected scalar|neon|avx2|avx512|auto");
}

Level dispatch_level(Level forced) {
  require(level_supported(forced), std::string("simd level '") + level_name(forced) +
                                       "' not supported by this build/CPU");
  return forced;
}

ExactSweepFn exact_sweep(Level level) {
  switch (level) {
    case Level::kScalar:
      return &exact_sweep_scalar;
#ifdef PROBLP_SIMD_TU_NEON
    case Level::kNeon:
      return &exact_sweep_neon;
#endif
#ifdef PROBLP_SIMD_TU_AVX2
    case Level::kAvx2:
      return &exact_sweep_avx2;
#endif
#ifdef PROBLP_SIMD_TU_AVX512
    case Level::kAvx512:
      return &exact_sweep_avx512;
#endif
    default:
      break;
  }
  throw InvalidArgument(std::string("simd level '") + level_name(level) +
                        "' not compiled into this binary");
}

FixedSweepFn fixed_sweep(Level level) {
  switch (level) {
    case Level::kScalar:
      return &fixed_sweep_scalar;
#ifdef PROBLP_SIMD_TU_NEON
    case Level::kNeon:
      return &fixed_sweep_neon;
#endif
#ifdef PROBLP_SIMD_TU_AVX2
    case Level::kAvx2:
      return &fixed_sweep_avx2;
#endif
#ifdef PROBLP_SIMD_TU_AVX512
    case Level::kAvx512:
      return &fixed_sweep_avx512;
#endif
    default:
      break;
  }
  throw InvalidArgument(std::string("simd level '") + level_name(level) +
                        "' not compiled into this binary");
}

FloatSweepFn32 float_sweep32(Level level) {
  switch (level) {
    case Level::kScalar:
      return &float_sweep32_scalar;
#ifdef PROBLP_SIMD_TU_NEON
    case Level::kNeon:
      return &float_sweep32_neon;
#endif
#ifdef PROBLP_SIMD_TU_AVX2
    case Level::kAvx2:
      return &float_sweep32_avx2;
#endif
#ifdef PROBLP_SIMD_TU_AVX512
    case Level::kAvx512:
      return &float_sweep32_avx512;
#endif
    default:
      break;
  }
  throw InvalidArgument(std::string("simd level '") + level_name(level) +
                        "' not compiled into this binary");
}

FloatSweepFn64 float_sweep64(Level level) {
  switch (level) {
    case Level::kScalar:
      return &float_sweep64_scalar;
#ifdef PROBLP_SIMD_TU_NEON
    case Level::kNeon:
      return &float_sweep64_neon;
#endif
#ifdef PROBLP_SIMD_TU_AVX2
    case Level::kAvx2:
      return &float_sweep64_avx2;
#endif
#ifdef PROBLP_SIMD_TU_AVX512
    case Level::kAvx512:
      return &float_sweep64_avx512;
#endif
    default:
      break;
  }
  throw InvalidArgument(std::string("simd level '") + level_name(level) +
                        "' not compiled into this binary");
}

}  // namespace problp::ac::simd
