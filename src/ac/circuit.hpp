// Arithmetic circuits (sum-product networks) — the computation model ProbLP
// analyses and turns into hardware (paper §2, Fig. 1b).
//
// A Circuit is a DAG stored in an arena; children always have smaller ids
// than their parents, so the arena order *is* a topological order and every
// analysis is a single forward sweep.  Leaves are either
//
//  * indicators λ_{X=x} — the evidence inputs, set to 0/1 per query, or
//  * parameters θ — CPT entries (or other constants) baked into the model.
//
// Internal nodes are n-ary SUM, PROD, or MAX (MAX appears in MPE circuits
// and in the min-value analysis).  The builder structurally hashes nodes so
// repeated subterms are shared, mirroring what AC compilers emit.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace problp::ac {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

enum class NodeKind : std::uint8_t {
  kSum,
  kProd,
  kMax,
  kIndicator,
  kParameter,
};

const char* to_string(NodeKind kind);

struct Node {
  NodeKind kind = NodeKind::kParameter;
  std::vector<NodeId> children;  ///< empty for leaves
  std::int32_t var = -1;         ///< indicator: variable id
  std::int32_t state = -1;       ///< indicator: state index
  double value = 0.0;            ///< parameter: constant value

  bool is_leaf() const {
    return kind == NodeKind::kIndicator || kind == NodeKind::kParameter;
  }
};

struct CircuitStats {
  std::size_t num_nodes = 0;
  std::size_t num_sums = 0;
  std::size_t num_prods = 0;
  std::size_t num_maxes = 0;
  std::size_t num_indicators = 0;
  std::size_t num_parameters = 0;
  std::size_t num_edges = 0;
  int depth = 0;        ///< operator levels from leaves to root
  int max_fanin = 0;

  std::string to_string() const;
};

class Circuit {
 public:
  /// A circuit over `num_variables` variables with the given cardinalities
  /// (indicator leaves are validated against them).
  explicit Circuit(std::vector<int> cardinalities);

  /// Indicator λ_{var=state}; one shared node per (var, state).
  NodeId add_indicator(int var, int state);

  /// Parameter leaf; parameters with bit-identical values are shared (they
  /// feed the same hardware constant).
  NodeId add_parameter(double value);

  /// n-ary operators.  Children must already exist.  Single-child operators
  /// collapse to the child.  Structurally identical nodes (same kind, same
  /// multiset of children) are shared.
  NodeId add_sum(std::vector<NodeId> children);
  NodeId add_prod(std::vector<NodeId> children);
  NodeId add_max(std::vector<NodeId> children);

  void set_root(NodeId root);
  NodeId root() const { return root_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_.at(static_cast<std::size_t>(id)); }

  int num_variables() const { return static_cast<int>(cardinalities_.size()); }
  const std::vector<int>& cardinalities() const { return cardinalities_; }

  /// Existing indicator node for (var, state), or kInvalidNode.
  NodeId find_indicator(int var, int state) const;

  /// All node values the circuit's operators can produce have fanin <= 2.
  bool is_binary() const;

  CircuitStats stats() const;

  /// Per-node operator depth: leaves 0, ops 1 + max(children).
  std::vector<int> node_depths() const;

  /// mask[i] == true iff node i feeds the root.  Dead nodes can appear in
  /// the arena (e.g. builder intermediates); hardware generation and energy
  /// accounting must ignore them.
  std::vector<bool> reachable_from_root() const;

 private:
  NodeId add_operator(NodeKind kind, std::vector<NodeId> children);
  NodeId push_node(Node node);

  std::vector<Node> nodes_;
  NodeId root_ = kInvalidNode;
  std::vector<int> cardinalities_;
  std::map<std::pair<int, int>, NodeId> indicator_cache_;
  std::unordered_map<std::uint64_t, NodeId> parameter_cache_;  ///< keyed by bit pattern
  std::unordered_map<std::uint64_t, std::vector<NodeId>> op_cache_;  ///< structural hash
};

}  // namespace problp::ac
