// Graphviz export of circuits, handy for papers/debugging (the quickstart
// example renders the Fig. 1b circuit this way).
#pragma once

#include <string>
#include <vector>

#include "ac/circuit.hpp"

namespace problp::ac {

/// Renders the circuit as a DOT digraph.  `variable_names`, when provided,
/// labels indicator leaves with readable names (must cover all variables).
std::string to_dot(const Circuit& circuit, const std::vector<std::string>& variable_names = {});

}  // namespace problp::ac
