#include "lowprec/fixed_point.hpp"

#include <cmath>

#include "util/error.hpp"

namespace problp::lowprec {

FixedPoint FixedPoint::from_double(double v, FixedFormat fmt, ArithFlags& flags,
                                   RoundingMode mode) {
  fmt.validate();
  FixedPoint out(fmt);
  if (std::isnan(v) || v < 0.0) {
    flags.invalid_input = true;
    return out;
  }
  if (std::isinf(v)) {
    flags.invalid_input = true;
    out.raw_ = fmt.max_raw();
    return out;
  }
  // v * 2^F is exact in double when v has <= 52 significant bits, which holds
  // for every double input by construction; the rounding step below is the
  // only inexact operation.
  const double scaled = std::ldexp(v, fmt.fraction_bits);
  double rounded = 0.0;
  if (mode == RoundingMode::kNearestEven) {
    rounded = std::nearbyint(scaled);  // FE_TONEAREST: ties to even
  } else {
    rounded = std::floor(scaled);  // non-negative: floor == truncate
  }
  if (rounded > std::ldexp(1.0, fmt.total_bits())) {
    flags.overflow = true;
    out.raw_ = fmt.max_raw();
    return out;
  }
  out.raw_ = detail::fx_clamp_raw(static_cast<u128>(rounded), fmt, flags);
  return out;
}

FixedPoint FixedPoint::from_raw(u128 raw, FixedFormat fmt) {
  fmt.validate();
  require(raw <= fmt.max_raw(), "FixedPoint::from_raw: raw value out of range");
  FixedPoint out(fmt);
  out.raw_ = raw;
  return out;
}

double FixedPoint::to_double() const { return fx_raw_to_double(raw_, fmt_); }

FixedPoint fx_add(const FixedPoint& a, const FixedPoint& b, ArithFlags& flags) {
  require(a.format() == b.format(), "fx_add: mixed formats");
  return FixedPoint::from_raw(fx_add_raw(a.raw(), b.raw(), a.format(), flags), a.format());
}

FixedPoint fx_mul(const FixedPoint& a, const FixedPoint& b, ArithFlags& flags,
                  RoundingMode mode) {
  require(a.format() == b.format(), "fx_mul: mixed formats");
  return FixedPoint::from_raw(fx_mul_raw(a.raw(), b.raw(), a.format(), flags, mode),
                              a.format());
}

FixedPoint fx_min(const FixedPoint& a, const FixedPoint& b) {
  require(a.format() == b.format(), "fx_min: mixed formats");
  return a.raw() < b.raw() ? a : b;
}

FixedPoint fx_max(const FixedPoint& a, const FixedPoint& b) {
  require(a.format() == b.format(), "fx_max: mixed formats");
  return a.raw() > b.raw() ? a : b;
}

}  // namespace problp::lowprec
