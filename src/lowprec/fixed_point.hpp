// Bit-exact emulation of the unsigned fixed-point operators that ProbLP's
// generated hardware instantiates (paper §3.1.1).
//
// A FixedPoint stores the scaled integer raw = round(value * 2^F) in a
// 128-bit word, so:
//
//  * conversion from double rounds to the nearest grid point
//    (|error| <= 2^-(F+1), eq. 2),
//  * addition is exact as long as the sum stays in range (eq. 3: the adder
//    adds no error of its own),
//  * multiplication computes the exact 2(I+F)-bit product and rounds the low
//    F bits away (the 2^-(F+1) term of eq. 4).
//
// Overflow saturates to the format maximum and raises ArithFlags::overflow.
// The framework's max-value analysis chooses I so that this never happens;
// the flag lets tests prove it.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

#include "lowprec/format.hpp"

namespace problp::lowprec {

class FixedPoint {
 public:
  /// Zero in the given format.
  explicit FixedPoint(FixedFormat fmt) : fmt_(fmt), raw_(0) {}

  /// Converts a non-negative double, rounding per `mode`.  Negative, NaN or
  /// infinite inputs clamp to 0 / max and set invalid_input.
  static FixedPoint from_double(double v, FixedFormat fmt, ArithFlags& flags,
                                RoundingMode mode = RoundingMode::kNearestEven);

  /// Wraps an already-scaled integer (raw must fit I+F bits).
  static FixedPoint from_raw(u128 raw, FixedFormat fmt);

  double to_double() const;
  u128 raw() const { return raw_; }
  const FixedFormat& format() const { return fmt_; }

  bool is_zero() const { return raw_ == 0; }

  friend bool operator==(const FixedPoint& a, const FixedPoint& b) {
    return a.raw_ == b.raw_;  // formats assumed equal (checked in ops)
  }

 private:
  FixedFormat fmt_;
  u128 raw_;
};

/// a + b; exact unless the sum overflows the format (then saturates + flags).
FixedPoint fx_add(const FixedPoint& a, const FixedPoint& b, ArithFlags& flags);

/// a * b with the low F bits of the exact product rounded away per `mode`.
FixedPoint fx_mul(const FixedPoint& a, const FixedPoint& b, ArithFlags& flags,
                  RoundingMode mode = RoundingMode::kNearestEven);

/// Exact min / max (no rounding; used for MPE max nodes and min-value
/// analysis).
FixedPoint fx_min(const FixedPoint& a, const FixedPoint& b);
FixedPoint fx_max(const FixedPoint& a, const FixedPoint& b);

// ---- raw-word kernels -------------------------------------------------------
// The same operators on bare raw words of one shared (pre-validated) format.
// fx_add / fx_mul are thin wrappers over these, so any consumer holding raw
// words — the batched SoA low-precision engine in ac/batch_lowprec.hpp — is
// bit-identical to the FixedPoint object level by construction.
//
// Inline on purpose: the batched raw-word sweep executes one of these per
// node per lane, and a cross-TU call per lane used to dominate its per-op
// cost.  Inlined, a saturating add is an u128 add plus one compare.

namespace detail {
/// Saturates `raw` into the format and flags overflow when it did not fit.
inline u128 fx_clamp_raw(u128 raw, const FixedFormat& fmt, ArithFlags& flags) {
  const u128 max_raw = fmt.max_raw();
  if (raw > max_raw) {
    flags.overflow = true;
    return max_raw;
  }
  return raw;
}
}  // namespace detail

/// Raw word of a + b, saturated into `fmt` (overflow flagged).
inline u128 fx_add_raw(u128 a, u128 b, const FixedFormat& fmt, ArithFlags& flags) {
  return detail::fx_clamp_raw(a + b, fmt, flags);
}

/// Raw word of a * b with the low F bits rounded away per `mode`.
inline u128 fx_mul_raw(u128 a, u128 b, const FixedFormat& fmt, ArithFlags& flags,
                       RoundingMode mode = RoundingMode::kNearestEven) {
  // Exact double-width product: value a*b scaled by 2^(2F).  Both operands
  // are <= 62 bits so the product fits u128.
  const u128 prod = a * b;
  return detail::fx_clamp_raw(round_shift_right(prod, fmt.fraction_bits, mode), fmt, flags);
}

/// Exact max on raw words (raw order == value order: same scale).
constexpr u128 fx_max_raw(u128 a, u128 b) { return a > b ? a : b; }

/// Widens a raw word back to double — identical to FixedPoint::to_double.
inline double fx_raw_to_double(u128 raw, const FixedFormat& fmt) {
  // raw < 2^62 so the uint64 narrowing below is lossless.
  return std::ldexp(static_cast<double>(static_cast<std::uint64_t>(raw)),
                    -fmt.fraction_bits);
}

// ---- narrow-word (u64) lane kernels ----------------------------------------
// For formats with fits_narrow_word() (total width <= 30 bits) every raw word
// is < 2^30, so a sum is <= 31 bits and an exact product <= 60 bits —
// add/mul/round/saturate all close over uint64_t and the u128 emulation above
// is pure overhead.  These kernels are the per-word semantics of the
// lane-parallel datapath (ac/simd_sweep_impl.hpp executes them over
// contiguous SoA lane arrays inside the per-ISA translation units); they are
// written branch-free — overflow is reported as a nonzero value OR-ed into a
// per-lane mask accumulator, never a sticky bool store — so the surrounding
// lane loops vectorise.  Each kernel is bit-identical to its u128 sibling by
// construction (same rounding arithmetic, same saturation point);
// tests/fixed_point_test.cpp proves it exhaustively at small widths and at
// the 29/30-bit narrow boundary.

namespace detail {
/// Saturates an unclamped narrow word at `max_raw` (an unsigned min, one
/// vector op) and ORs a nonzero value into `ovf_mask` exactly when the lane
/// saturated: v ^ min(v, max_raw) is 0 iff v was in range.
inline std::uint64_t fx_sat_raw_u64(std::uint64_t v, std::uint64_t max_raw,
                                    std::uint64_t& ovf_mask) {
  const std::uint64_t sat = v < max_raw ? v : max_raw;
  ovf_mask |= v ^ sat;
  return sat;
}
}  // namespace detail

/// Narrow word of a + b, saturated at `max_raw`; an overflowing lane ORs a
/// nonzero value into `ovf_mask`.
inline std::uint64_t fx_add_raw_u64(std::uint64_t a, std::uint64_t b, std::uint64_t max_raw,
                                    std::uint64_t& ovf_mask) {
  return detail::fx_sat_raw_u64(a + b, max_raw, ovf_mask);
}

/// Narrow word of a * b with the low `fraction_bits` bits rounded away per
/// `Mode`, saturated at `max_raw`.  `half` is the rounding midpoint
/// 2^(fraction_bits - 1).  Instantiate with kTruncate when fraction_bits ==
/// 0: a shift-0 truncation IS the exact product, while the nearest bias
/// below requires half >= 1.
template <RoundingMode Mode>
inline std::uint64_t fx_mul_raw_u64(std::uint64_t a, std::uint64_t b, int fraction_bits,
                                    [[maybe_unused]] std::uint64_t half,
                                    std::uint64_t max_raw, std::uint64_t& ovf_mask) {
  // Operands are saturated narrow words (< 2^30), so the u32 narrowing is
  // lossless and the exact product is one 32x32->64 multiply on every
  // vector ISA (AVX2/AVX-512F/NEON have no 64x64 lane multiply).
  const std::uint64_t prod = static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) *
                             static_cast<std::uint32_t>(b);
  std::uint64_t kept;
  if constexpr (Mode == RoundingMode::kNearestEven) {
    // round_shift_right's nearest-even via the carry bias: adding
    // half - 1 + lsb(kept) carries into the kept bits exactly when the
    // remainder is above the midpoint, or on it with kept odd — no
    // compares, so the lane loop needs no mask registers.  The bias cannot
    // wrap: prod <= 2^60 and half <= 2^29.
    kept = (prod + (half - 1) + ((prod >> fraction_bits) & 1)) >> fraction_bits;
  } else {
    kept = prod >> fraction_bits;
  }
  return detail::fx_sat_raw_u64(kept, max_raw, ovf_mask);
}

/// Exact max on narrow words (raw order == value order: same scale).
constexpr std::uint64_t fx_max_raw_u64(std::uint64_t a, std::uint64_t b) {
  return a > b ? a : b;
}

// ---- narrow-word (u32) lane kernels ----------------------------------------
// The storage-halved siblings of the u64 kernels above, and what the batched
// narrow datapath actually executes: a saturated narrow word is < 2^30, so
// the *stored* lanes fit u32 exactly — halving SoA buffer traffic and
// doubling the lanes per vector register (16 per AVX-512 zmm) — while each
// multiply still widens through the same exact u64 product before rounding
// back.  Bit-identical to the u64 kernels by construction: the u32 sum
// cannot wrap (a + b < 2^31), the product/round arithmetic is shared, and
// the one extra step — clamping the rounded `kept` into u32 before the
// saturation compare — preserves both the saturated value (max_raw < 2^30)
// and the overflow verdict (kept > max_raw iff its u32 clamp is).

namespace detail {
/// u32 twin of fx_sat_raw_u64: unsigned-min saturation, nonzero OR-ed into
/// the per-lane mask exactly when the lane saturated.
inline std::uint32_t fx_sat_raw_u32(std::uint32_t v, std::uint32_t max_raw,
                                    std::uint32_t& ovf_mask) {
  const std::uint32_t sat = v < max_raw ? v : max_raw;
  ovf_mask |= v ^ sat;
  return sat;
}
}  // namespace detail

/// u32 word of a + b, saturated at `max_raw`.  Operands are saturated narrow
/// words (< 2^30), so the u32 sum is exact — no wrap to account for.
inline std::uint32_t fx_add_raw_u32(std::uint32_t a, std::uint32_t b, std::uint32_t max_raw,
                                    std::uint32_t& ovf_mask) {
  return detail::fx_sat_raw_u32(a + b, max_raw, ovf_mask);
}

/// u32 word of a * b with the low `fraction_bits` bits rounded away per
/// `Mode`, saturated at `max_raw`.  Same contract as fx_mul_raw_u64; the
/// exact product widens to u64 per lane (one 32x32->64 vector multiply),
/// and the rounded result re-narrows through a u32 clamp that cannot change
/// the saturation outcome (see the section comment).
template <RoundingMode Mode>
inline std::uint32_t fx_mul_raw_u32(std::uint32_t a, std::uint32_t b, int fraction_bits,
                                    [[maybe_unused]] std::uint32_t half,
                                    std::uint32_t max_raw, std::uint32_t& ovf_mask) {
  const std::uint64_t prod = static_cast<std::uint64_t>(a) * b;
  std::uint64_t kept;
  if constexpr (Mode == RoundingMode::kNearestEven) {
    // Same carry-bias nearest-even as fx_mul_raw_u64; the bias cannot wrap
    // (prod <= 2^60, half <= 2^29).
    kept = (prod + (half - std::uint64_t{1}) + ((prod >> fraction_bits) & 1)) >>
           fraction_bits;
  } else {
    kept = prod >> fraction_bits;
  }
  // `kept` may exceed 32 bits when fraction_bits is small; clamp into u32
  // before the lane-width saturation compare.  max_raw < 2^30, so the clamp
  // saturates to the same value and the same verdict as the u64 compare.
  const std::uint32_t kept32 =
      kept > 0xffffffffull ? 0xffffffffu : static_cast<std::uint32_t>(kept);
  return detail::fx_sat_raw_u32(kept32, max_raw, ovf_mask);
}

/// Exact max on u32 narrow words (raw order == value order: same scale).
constexpr std::uint32_t fx_max_raw_u32(std::uint32_t a, std::uint32_t b) {
  return a > b ? a : b;
}

}  // namespace problp::lowprec
