// Bit-exact emulation of the unsigned fixed-point operators that ProbLP's
// generated hardware instantiates (paper §3.1.1).
//
// A FixedPoint stores the scaled integer raw = round(value * 2^F) in a
// 128-bit word, so:
//
//  * conversion from double rounds to the nearest grid point
//    (|error| <= 2^-(F+1), eq. 2),
//  * addition is exact as long as the sum stays in range (eq. 3: the adder
//    adds no error of its own),
//  * multiplication computes the exact 2(I+F)-bit product and rounds the low
//    F bits away (the 2^-(F+1) term of eq. 4).
//
// Overflow saturates to the format maximum and raises ArithFlags::overflow.
// The framework's max-value analysis chooses I so that this never happens;
// the flag lets tests prove it.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

#include "lowprec/format.hpp"

namespace problp::lowprec {

class FixedPoint {
 public:
  /// Zero in the given format.
  explicit FixedPoint(FixedFormat fmt) : fmt_(fmt), raw_(0) {}

  /// Converts a non-negative double, rounding per `mode`.  Negative, NaN or
  /// infinite inputs clamp to 0 / max and set invalid_input.
  static FixedPoint from_double(double v, FixedFormat fmt, ArithFlags& flags,
                                RoundingMode mode = RoundingMode::kNearestEven);

  /// Wraps an already-scaled integer (raw must fit I+F bits).
  static FixedPoint from_raw(u128 raw, FixedFormat fmt);

  double to_double() const;
  u128 raw() const { return raw_; }
  const FixedFormat& format() const { return fmt_; }

  bool is_zero() const { return raw_ == 0; }

  friend bool operator==(const FixedPoint& a, const FixedPoint& b) {
    return a.raw_ == b.raw_;  // formats assumed equal (checked in ops)
  }

 private:
  FixedFormat fmt_;
  u128 raw_;
};

/// a + b; exact unless the sum overflows the format (then saturates + flags).
FixedPoint fx_add(const FixedPoint& a, const FixedPoint& b, ArithFlags& flags);

/// a * b with the low F bits of the exact product rounded away per `mode`.
FixedPoint fx_mul(const FixedPoint& a, const FixedPoint& b, ArithFlags& flags,
                  RoundingMode mode = RoundingMode::kNearestEven);

/// Exact min / max (no rounding; used for MPE max nodes and min-value
/// analysis).
FixedPoint fx_min(const FixedPoint& a, const FixedPoint& b);
FixedPoint fx_max(const FixedPoint& a, const FixedPoint& b);

// ---- raw-word kernels -------------------------------------------------------
// The same operators on bare raw words of one shared (pre-validated) format.
// fx_add / fx_mul are thin wrappers over these, so any consumer holding raw
// words — the batched SoA low-precision engine in ac/batch_lowprec.hpp — is
// bit-identical to the FixedPoint object level by construction.
//
// Inline on purpose: the batched raw-word sweep executes one of these per
// node per lane, and a cross-TU call per lane used to dominate its per-op
// cost.  Inlined, a saturating add is an u128 add plus one compare.

namespace detail {
/// Saturates `raw` into the format and flags overflow when it did not fit.
inline u128 fx_clamp_raw(u128 raw, const FixedFormat& fmt, ArithFlags& flags) {
  const u128 max_raw = fmt.max_raw();
  if (raw > max_raw) {
    flags.overflow = true;
    return max_raw;
  }
  return raw;
}
}  // namespace detail

/// Raw word of a + b, saturated into `fmt` (overflow flagged).
inline u128 fx_add_raw(u128 a, u128 b, const FixedFormat& fmt, ArithFlags& flags) {
  return detail::fx_clamp_raw(a + b, fmt, flags);
}

/// Raw word of a * b with the low F bits rounded away per `mode`.
inline u128 fx_mul_raw(u128 a, u128 b, const FixedFormat& fmt, ArithFlags& flags,
                       RoundingMode mode = RoundingMode::kNearestEven) {
  // Exact double-width product: value a*b scaled by 2^(2F).  Both operands
  // are <= 62 bits so the product fits u128.
  const u128 prod = a * b;
  return detail::fx_clamp_raw(round_shift_right(prod, fmt.fraction_bits, mode), fmt, flags);
}

/// Exact max on raw words (raw order == value order: same scale).
constexpr u128 fx_max_raw(u128 a, u128 b) { return a > b ? a : b; }

/// Widens a raw word back to double — identical to FixedPoint::to_double.
inline double fx_raw_to_double(u128 raw, const FixedFormat& fmt) {
  // raw < 2^62 so the uint64 narrowing below is lossless.
  return std::ldexp(static_cast<double>(static_cast<std::uint64_t>(raw)),
                    -fmt.fraction_bits);
}

}  // namespace problp::lowprec
