#include "lowprec/format.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace problp::lowprec {

void FixedFormat::validate() const {
  require(integer_bits >= 0, "FixedFormat: integer_bits must be >= 0");
  require(fraction_bits >= 0, "FixedFormat: fraction_bits must be >= 0");
  require(total_bits() >= 1, "FixedFormat: need at least one bit");
  require(total_bits() <= 62,
          "FixedFormat: total width > 62 bits cannot be emulated exactly");
}

std::string FixedFormat::to_string() const {
  return str_format("fx<I=%d,F=%d>", integer_bits, fraction_bits);
}

void FloatFormat::validate() const {
  require(exponent_bits >= 2, "FloatFormat: exponent_bits must be >= 2");
  require(exponent_bits <= 28, "FloatFormat: exponent_bits must be <= 28");
  require(mantissa_bits >= 1, "FloatFormat: mantissa_bits must be >= 1");
  require(mantissa_bits <= 60,
          "FloatFormat: mantissa_bits > 60 cannot be emulated exactly");
}

std::string FloatFormat::to_string() const {
  return str_format("fl<E=%d,M=%d>", exponent_bits, mantissa_bits);
}

}  // namespace problp::lowprec
