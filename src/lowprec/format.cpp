#include "lowprec/format.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace problp::lowprec {

void FixedFormat::validate() const {
  require(integer_bits >= 0, "FixedFormat: integer_bits must be >= 0");
  require(fraction_bits >= 0, "FixedFormat: fraction_bits must be >= 0");
  require(total_bits() >= 1, "FixedFormat: need at least one bit");
  require(total_bits() <= 62,
          "FixedFormat: total width > 62 bits cannot be emulated exactly");
}

std::string FixedFormat::to_string() const {
  return str_format("fx<I=%d,F=%d>", integer_bits, fraction_bits);
}

void FloatFormat::validate() const {
  require(exponent_bits >= 2, "FloatFormat: exponent_bits must be >= 2");
  require(exponent_bits <= 28, "FloatFormat: exponent_bits must be <= 28");
  require(mantissa_bits >= 1, "FloatFormat: mantissa_bits must be >= 1");
  require(mantissa_bits <= 60,
          "FloatFormat: mantissa_bits > 60 cannot be emulated exactly");
}

std::string FloatFormat::to_string() const {
  return str_format("fl<E=%d,M=%d>", exponent_bits, mantissa_bits);
}

u128 round_shift_right(u128 value, int shift, RoundingMode mode) {
  if (shift <= 0) return value << (-shift);
  if (shift >= 128) {
    // Everything is shifted out; only the sticky/half information survives.
    if (mode == RoundingMode::kTruncate) return 0;
    return 0;  // value < 2^128 <= half of 2^129 grid: rounds to 0 unless
               // shift == 128 and value >= 2^127, which cannot reach here in
               // practice (operands are <= 124 bits); keep conservative 0.
  }
  const u128 kept = value >> shift;
  if (mode == RoundingMode::kTruncate) return kept;
  const u128 rem = value - (kept << shift);
  const u128 half = u128_pow2(shift - 1);
  if (rem > half) return kept + 1;
  if (rem < half) return kept;
  return kept + (kept & 1);  // tie: round to even
}

}  // namespace problp::lowprec
