#include "lowprec/soft_float.hpp"

#include <cmath>

#include "util/error.hpp"

namespace problp::lowprec {

namespace {

// Builds a normalised SoftFloat from the exact (or sticky-augmented, see
// fl_add) value  wide * 2^scale, rounding the significand to M+1 bits and
// applying the overflow/underflow policy.
SoftFloat make_normalized(u128 wide, int scale, const FloatFormat& fmt,
                          ArithFlags& flags, RoundingMode mode) {
  if (wide == 0) return SoftFloat(fmt);
  const int m = fmt.mantissa_bits;
  int msb = msb_index(wide);
  int exp = msb + scale;
  u128 sig = round_shift_right(wide, msb - m, mode);
  if (sig == u128_pow2(m + 1)) {  // rounding carried into a new binade
    sig >>= 1;
    exp += 1;
  }
  if (exp > fmt.max_exponent()) {
    flags.overflow = true;
    return SoftFloat::max_value(fmt);
  }
  if (exp < fmt.min_exponent()) {
    flags.underflow = true;  // flush to zero (no subnormals, paper §3.1.2)
    return SoftFloat(fmt);
  }
  return SoftFloat::from_parts(exp, static_cast<std::uint64_t>(sig), fmt);
}

}  // namespace

SoftFloat SoftFloat::from_double(double v, FloatFormat fmt, ArithFlags& flags,
                                 RoundingMode mode) {
  fmt.validate();
  if (v == 0.0) return SoftFloat(fmt);
  if (std::isnan(v) || v < 0.0) {
    flags.invalid_input = true;
    return SoftFloat(fmt);
  }
  if (std::isinf(v)) {
    flags.invalid_input = true;
    return max_value(fmt);
  }
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  // m * 2^53 is an integer in [2^52, 2^53): the full double significand.
  const auto mant53 = static_cast<std::uint64_t>(std::ldexp(m, 53));
  // value = mant53 * 2^(e - 53); make_normalized rounds to M+1 bits.
  return make_normalized(mant53, e - 53, fmt, flags, mode);
}

SoftFloat SoftFloat::from_parts(int exp, std::uint64_t sig, FloatFormat fmt) {
  fmt.validate();
  SoftFloat out(fmt);
  if (sig == 0) return out;
  const std::uint64_t lo = std::uint64_t{1} << fmt.mantissa_bits;
  require(sig >= lo && sig < 2 * lo, "SoftFloat::from_parts: unnormalised significand");
  require(exp >= fmt.min_exponent() && exp <= fmt.max_exponent(),
          "SoftFloat::from_parts: exponent out of range");
  out.exp_ = exp;
  out.sig_ = sig;
  return out;
}

SoftFloat SoftFloat::max_value(FloatFormat fmt) {
  const std::uint64_t sig = (std::uint64_t{1} << (fmt.mantissa_bits + 1)) - 1;
  return from_parts(fmt.max_exponent(), sig, fmt);
}

SoftFloat SoftFloat::min_normal(FloatFormat fmt) {
  return from_parts(fmt.min_exponent(), std::uint64_t{1} << fmt.mantissa_bits, fmt);
}

double SoftFloat::to_double() const {
  if (sig_ == 0) return 0.0;
  return std::ldexp(static_cast<double>(sig_), exp_ - fmt_.mantissa_bits);
}

SoftFloat fl_add(const SoftFloat& a_in, const SoftFloat& b_in, ArithFlags& flags,
                 RoundingMode mode) {
  require(a_in.format() == b_in.format(), "fl_add: mixed formats");
  const FloatFormat& fmt = a_in.format();
  if (a_in.is_zero()) return b_in;
  if (b_in.is_zero()) return a_in;
  const SoftFloat& a = (a_in.exponent() >= b_in.exponent()) ? a_in : b_in;
  const SoftFloat& b = (a_in.exponent() >= b_in.exponent()) ? b_in : a_in;
  const int m = fmt.mantissa_bits;
  const int d = a.exponent() - b.exponent();

  // Align b to a's scale with 3 extra guard/round/sticky bits.  Since both
  // operands are positive (no cancellation), GRS alignment plus one final
  // rounding is exactly the correctly-rounded sum.
  const u128 asig3 = static_cast<u128>(a.significand()) << 3;
  u128 bsig3 = 0;
  if (d <= m + 4) {
    const u128 shifted_b = static_cast<u128>(b.significand()) << 3;
    bsig3 = shifted_b >> d;
    const u128 dropped = shifted_b - (bsig3 << d);
    if (dropped != 0) bsig3 |= 1;  // sticky
  } else {
    bsig3 = 1;  // b entirely below the guard bits: pure sticky contribution
  }
  const u128 sum = asig3 + bsig3;
  // value = sum * 2^(a.exp - m - 3)
  return make_normalized(sum, a.exponent() - m - 3, fmt, flags, mode);
}

SoftFloat fl_mul(const SoftFloat& a, const SoftFloat& b, ArithFlags& flags,
                 RoundingMode mode) {
  require(a.format() == b.format(), "fl_mul: mixed formats");
  const FloatFormat& fmt = a.format();
  if (a.is_zero() || b.is_zero()) return SoftFloat(fmt);
  const int m = fmt.mantissa_bits;
  // Exact significand product: (M+1)+(M+1) <= 122 bits.
  const u128 wide = static_cast<u128>(a.significand()) * b.significand();
  // a = sig_a * 2^(ea - m), b likewise => value = wide * 2^(ea + eb - 2m).
  return make_normalized(wide, a.exponent() + b.exponent() - 2 * m, fmt, flags, mode);
}

bool fl_less(const SoftFloat& a, const SoftFloat& b) {
  require(a.format() == b.format(), "fl_less: mixed formats");
  if (a.is_zero()) return !b.is_zero();
  if (b.is_zero()) return false;
  if (a.exponent() != b.exponent()) return a.exponent() < b.exponent();
  return a.significand() < b.significand();
}

SoftFloat fl_min(const SoftFloat& a, const SoftFloat& b) {
  return fl_less(a, b) ? a : b;
}

SoftFloat fl_max(const SoftFloat& a, const SoftFloat& b) {
  return fl_less(a, b) ? b : a;
}

}  // namespace problp::lowprec
