#include "lowprec/soft_float.hpp"

#include <cmath>

#include "util/error.hpp"

namespace problp::lowprec {

namespace {

/// Raw word of the format's largest representable value.
FloatRaw raw_max_value(const FloatFormat& fmt) {
  return FloatRaw{fmt.max_exponent(),
                  (std::uint64_t{1} << (fmt.mantissa_bits + 1)) - 1};
}

// Builds a normalised raw word from the exact (or sticky-augmented, see
// fl_add_raw) value  wide * 2^scale, rounding the significand to M+1 bits
// and applying the overflow/underflow policy.
FloatRaw make_normalized_raw(u128 wide, int scale, const FloatFormat& fmt,
                             ArithFlags& flags, RoundingMode mode) {
  if (wide == 0) return FloatRaw{};
  const int m = fmt.mantissa_bits;
  int msb = msb_index(wide);
  int exp = msb + scale;
  u128 sig = round_shift_right(wide, msb - m, mode);
  if (sig == u128_pow2(m + 1)) {  // rounding carried into a new binade
    sig >>= 1;
    exp += 1;
  }
  if (exp > fmt.max_exponent()) {
    flags.overflow = true;
    return raw_max_value(fmt);
  }
  if (exp < fmt.min_exponent()) {
    flags.underflow = true;  // flush to zero (no subnormals, paper §3.1.2)
    return FloatRaw{};
  }
  return FloatRaw{exp, static_cast<std::uint64_t>(sig)};
}

// Rebuilds the object level from a kernel result (raws are normalised by
// construction, so from_parts' invariants hold).
SoftFloat from_raw(const FloatRaw& raw, const FloatFormat& fmt) {
  if (raw.sig == 0) return SoftFloat(fmt);
  return SoftFloat::from_parts(raw.exp, raw.sig, fmt);
}

SoftFloat make_normalized(u128 wide, int scale, const FloatFormat& fmt,
                          ArithFlags& flags, RoundingMode mode) {
  return from_raw(make_normalized_raw(wide, scale, fmt, flags, mode), fmt);
}

}  // namespace

SoftFloat SoftFloat::from_double(double v, FloatFormat fmt, ArithFlags& flags,
                                 RoundingMode mode) {
  fmt.validate();
  if (v == 0.0) return SoftFloat(fmt);
  if (std::isnan(v) || v < 0.0) {
    flags.invalid_input = true;
    return SoftFloat(fmt);
  }
  if (std::isinf(v)) {
    flags.invalid_input = true;
    return max_value(fmt);
  }
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  // m * 2^53 is an integer in [2^52, 2^53): the full double significand.
  const auto mant53 = static_cast<std::uint64_t>(std::ldexp(m, 53));
  // value = mant53 * 2^(e - 53); make_normalized rounds to M+1 bits.
  return make_normalized(mant53, e - 53, fmt, flags, mode);
}

SoftFloat SoftFloat::from_parts(int exp, std::uint64_t sig, FloatFormat fmt) {
  fmt.validate();
  SoftFloat out(fmt);
  if (sig == 0) return out;
  const std::uint64_t lo = std::uint64_t{1} << fmt.mantissa_bits;
  require(sig >= lo && sig < 2 * lo, "SoftFloat::from_parts: unnormalised significand");
  require(exp >= fmt.min_exponent() && exp <= fmt.max_exponent(),
          "SoftFloat::from_parts: exponent out of range");
  out.exp_ = exp;
  out.sig_ = sig;
  return out;
}

SoftFloat SoftFloat::max_value(FloatFormat fmt) {
  const std::uint64_t sig = (std::uint64_t{1} << (fmt.mantissa_bits + 1)) - 1;
  return from_parts(fmt.max_exponent(), sig, fmt);
}

SoftFloat SoftFloat::min_normal(FloatFormat fmt) {
  return from_parts(fmt.min_exponent(), std::uint64_t{1} << fmt.mantissa_bits, fmt);
}

double SoftFloat::to_double() const { return fl_raw_to_double(raw(), fmt_); }

FloatRaw fl_add_raw(const FloatRaw& x, const FloatRaw& y, const FloatFormat& fmt,
                    ArithFlags& flags, RoundingMode mode) {
  if (x.sig == 0) return y;
  if (y.sig == 0) return x;
  const FloatRaw& a = (x.exp >= y.exp) ? x : y;
  const FloatRaw& b = (x.exp >= y.exp) ? y : x;
  const int m = fmt.mantissa_bits;
  const int d = a.exp - b.exp;

  // Align b to a's scale with 3 extra guard/round/sticky bits.  Since both
  // operands are positive (no cancellation), GRS alignment plus one final
  // rounding is exactly the correctly-rounded sum.
  const u128 asig3 = static_cast<u128>(a.sig) << 3;
  u128 bsig3 = 0;
  if (d <= m + 4) {
    const u128 shifted_b = static_cast<u128>(b.sig) << 3;
    bsig3 = shifted_b >> d;
    const u128 dropped = shifted_b - (bsig3 << d);
    if (dropped != 0) bsig3 |= 1;  // sticky
  } else {
    bsig3 = 1;  // b entirely below the guard bits: pure sticky contribution
  }
  const u128 sum = asig3 + bsig3;
  // value = sum * 2^(a.exp - m - 3)
  return make_normalized_raw(sum, a.exp - m - 3, fmt, flags, mode);
}

FloatRaw fl_mul_raw(const FloatRaw& a, const FloatRaw& b, const FloatFormat& fmt,
                    ArithFlags& flags, RoundingMode mode) {
  if (a.sig == 0 || b.sig == 0) return FloatRaw{};
  const int m = fmt.mantissa_bits;
  // Exact significand product: (M+1)+(M+1) <= 122 bits.
  const u128 wide = static_cast<u128>(a.sig) * b.sig;
  // a = sig_a * 2^(ea - m), b likewise => value = wide * 2^(ea + eb - 2m).
  return make_normalized_raw(wide, a.exp + b.exp - 2 * m, fmt, flags, mode);
}

bool fl_less_raw(const FloatRaw& a, const FloatRaw& b) {
  if (a.sig == 0) return b.sig != 0;
  if (b.sig == 0) return false;
  if (a.exp != b.exp) return a.exp < b.exp;
  return a.sig < b.sig;
}

double fl_raw_to_double(const FloatRaw& raw, const FloatFormat& fmt) {
  if (raw.sig == 0) return 0.0;
  return std::ldexp(static_cast<double>(raw.sig), raw.exp - fmt.mantissa_bits);
}

SoftFloat fl_add(const SoftFloat& a, const SoftFloat& b, ArithFlags& flags,
                 RoundingMode mode) {
  require(a.format() == b.format(), "fl_add: mixed formats");
  return from_raw(fl_add_raw(a.raw(), b.raw(), a.format(), flags, mode), a.format());
}

SoftFloat fl_mul(const SoftFloat& a, const SoftFloat& b, ArithFlags& flags,
                 RoundingMode mode) {
  require(a.format() == b.format(), "fl_mul: mixed formats");
  return from_raw(fl_mul_raw(a.raw(), b.raw(), a.format(), flags, mode), a.format());
}

bool fl_less(const SoftFloat& a, const SoftFloat& b) {
  require(a.format() == b.format(), "fl_less: mixed formats");
  return fl_less_raw(a.raw(), b.raw());
}

SoftFloat fl_min(const SoftFloat& a, const SoftFloat& b) {
  return fl_less(a, b) ? a : b;
}

SoftFloat fl_max(const SoftFloat& a, const SoftFloat& b) {
  return fl_less(a, b) ? b : a;
}

}  // namespace problp::lowprec
