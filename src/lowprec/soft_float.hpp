// Bit-exact emulation of parameterised normalised floating point — the
// float-pt operators of paper §3.1.2.
//
// A non-zero SoftFloat holds  value = sig * 2^(exp - M)  with the significand
// sig carrying exactly M+1 bits (hidden leading one made explicit):
// 2^M <= sig < 2^(M+1).  sig == 0 encodes the number zero.
//
// Operators compute the mathematically exact result in 128-bit intermediates
// and round once to M+1 significand bits (round-to-nearest-even by default),
// exactly matching the single (1 +/- eps) rounding term per operation that
// the paper's error models assume (eqs. 9 and 11):
//
//  * multiply: exact (2M+2)-bit significand product, one rounding;
//  * add: operands are non-negative, so no cancellation can occur; the
//    smaller operand is aligned with guard/round/sticky bits and the sum is
//    rounded once (the "rounding of the LSB bits of the smaller input" in
//    eq. 9 and the final rounding collapse into one correctly-rounded step,
//    which is what real floating-point adders do);
//  * min/max: exact, no rounding (used by MPE nodes and min-value analysis).
//
// Overflow saturates to the format maximum, underflow flushes to zero; both
// raise ArithFlags so the §3.1.4 range analysis can be validated.
#pragma once

#include <cstdint>

#include "lowprec/format.hpp"

namespace problp::lowprec {

/// The two raw machine words of a SoftFloat — what the generated hardware's
/// registers actually hold, and the element type of the batched SoA engine
/// (ac/batch_lowprec.hpp).  sig == 0 encodes the number zero; otherwise sig
/// carries exactly M+1 bits and exp is the unbiased exponent.
struct FloatRaw {
  std::int32_t exp = 0;
  std::uint64_t sig = 0;

  friend bool operator==(const FloatRaw& a, const FloatRaw& b) {
    return a.sig == b.sig && (a.sig == 0 || a.exp == b.exp);
  }
};

class SoftFloat {
 public:
  /// Zero in the given format.
  explicit SoftFloat(FloatFormat fmt) : fmt_(fmt), exp_(0), sig_(0) {}

  /// Converts a non-negative double with a single rounding.  Negative/NaN
  /// inputs flag invalid and yield zero; +inf flags invalid and saturates.
  static SoftFloat from_double(double v, FloatFormat fmt, ArithFlags& flags,
                               RoundingMode mode = RoundingMode::kNearestEven);

  /// Builds from parts; requires 2^M <= sig < 2^(M+1) (or sig == 0) and the
  /// exponent in range.
  static SoftFloat from_parts(int exp, std::uint64_t sig, FloatFormat fmt);

  /// Largest / smallest positive representable value of `fmt`.
  static SoftFloat max_value(FloatFormat fmt);
  static SoftFloat min_normal(FloatFormat fmt);

  /// Exact when M <= 52 (double's own significand width); callers comparing
  /// against double oracles should stay in that regime.
  double to_double() const;

  bool is_zero() const { return sig_ == 0; }
  int exponent() const { return exp_; }
  std::uint64_t significand() const { return sig_; }
  FloatRaw raw() const { return FloatRaw{exp_, sig_}; }
  const FloatFormat& format() const { return fmt_; }

  friend bool operator==(const SoftFloat& a, const SoftFloat& b) {
    return a.sig_ == b.sig_ && (a.sig_ == 0 || a.exp_ == b.exp_);
  }

 private:
  FloatFormat fmt_;
  std::int32_t exp_;   ///< unbiased exponent; meaningful only when sig_ != 0
  std::uint64_t sig_;  ///< M+1-bit significand, or 0 for the number zero
};

/// a + b, correctly rounded per `mode`.
SoftFloat fl_add(const SoftFloat& a, const SoftFloat& b, ArithFlags& flags,
                 RoundingMode mode = RoundingMode::kNearestEven);

/// a * b, correctly rounded per `mode`.
SoftFloat fl_mul(const SoftFloat& a, const SoftFloat& b, ArithFlags& flags,
                 RoundingMode mode = RoundingMode::kNearestEven);

/// Exact comparisons / selection (no rounding).
bool fl_less(const SoftFloat& a, const SoftFloat& b);
SoftFloat fl_min(const SoftFloat& a, const SoftFloat& b);
SoftFloat fl_max(const SoftFloat& a, const SoftFloat& b);

// ---- raw-word kernels -------------------------------------------------------
// The same operators on bare (exp, sig) words of one shared (pre-validated)
// format.  fl_add / fl_mul / fl_max are thin wrappers over these, so any
// consumer holding raw words — the batched SoA low-precision engine in
// ac/batch_lowprec.hpp — is bit-identical to the SoftFloat object level by
// construction.

/// a + b on raw words, correctly rounded per `mode`.
FloatRaw fl_add_raw(const FloatRaw& a, const FloatRaw& b, const FloatFormat& fmt,
                    ArithFlags& flags, RoundingMode mode = RoundingMode::kNearestEven);

/// a * b on raw words, correctly rounded per `mode`.
FloatRaw fl_mul_raw(const FloatRaw& a, const FloatRaw& b, const FloatFormat& fmt,
                    ArithFlags& flags, RoundingMode mode = RoundingMode::kNearestEven);

/// Exact a < b on raw words (lexicographic on (exp, sig) with zero lowest).
bool fl_less_raw(const FloatRaw& a, const FloatRaw& b);

/// Exact max on raw words.
inline FloatRaw fl_max_raw(const FloatRaw& a, const FloatRaw& b) {
  return fl_less_raw(a, b) ? b : a;
}

/// Widens a raw word back to double — identical to SoftFloat::to_double.
double fl_raw_to_double(const FloatRaw& raw, const FloatFormat& fmt);

}  // namespace problp::lowprec
