// Bit-exact emulation of parameterised normalised floating point — the
// float-pt operators of paper §3.1.2.
//
// A non-zero SoftFloat holds  value = sig * 2^(exp - M)  with the significand
// sig carrying exactly M+1 bits (hidden leading one made explicit):
// 2^M <= sig < 2^(M+1).  sig == 0 encodes the number zero.
//
// Operators compute the mathematically exact result in 128-bit intermediates
// and round once to M+1 significand bits (round-to-nearest-even by default),
// exactly matching the single (1 +/- eps) rounding term per operation that
// the paper's error models assume (eqs. 9 and 11):
//
//  * multiply: exact (2M+2)-bit significand product, one rounding;
//  * add: operands are non-negative, so no cancellation can occur; the
//    smaller operand is aligned with guard/round/sticky bits and the sum is
//    rounded once (the "rounding of the LSB bits of the smaller input" in
//    eq. 9 and the final rounding collapse into one correctly-rounded step,
//    which is what real floating-point adders do);
//  * min/max: exact, no rounding (used by MPE nodes and min-value analysis).
//
// Overflow saturates to the format maximum, underflow flushes to zero; both
// raise ArithFlags so the §3.1.4 range analysis can be validated.
#pragma once

#include <cstdint>

#include "lowprec/format.hpp"

namespace problp::lowprec {

/// The two raw machine words of a SoftFloat — what the generated hardware's
/// registers actually hold, and the element type of the batched SoA engine
/// (ac/batch_lowprec.hpp).  sig == 0 encodes the number zero; otherwise sig
/// carries exactly M+1 bits and exp is the unbiased exponent.
struct FloatRaw {
  std::int32_t exp = 0;
  std::uint64_t sig = 0;

  friend bool operator==(const FloatRaw& a, const FloatRaw& b) {
    return a.sig == b.sig && (a.sig == 0 || a.exp == b.exp);
  }
};

class SoftFloat {
 public:
  /// Zero in the given format.
  explicit SoftFloat(FloatFormat fmt) : fmt_(fmt), exp_(0), sig_(0) {}

  /// Converts a non-negative double with a single rounding.  Negative/NaN
  /// inputs flag invalid and yield zero; +inf flags invalid and saturates.
  static SoftFloat from_double(double v, FloatFormat fmt, ArithFlags& flags,
                               RoundingMode mode = RoundingMode::kNearestEven);

  /// Builds from parts; requires 2^M <= sig < 2^(M+1) (or sig == 0) and the
  /// exponent in range.
  static SoftFloat from_parts(int exp, std::uint64_t sig, FloatFormat fmt);

  /// Largest / smallest positive representable value of `fmt`.
  static SoftFloat max_value(FloatFormat fmt);
  static SoftFloat min_normal(FloatFormat fmt);

  /// Exact when M <= 52 (double's own significand width); callers comparing
  /// against double oracles should stay in that regime.
  double to_double() const;

  bool is_zero() const { return sig_ == 0; }
  int exponent() const { return exp_; }
  std::uint64_t significand() const { return sig_; }
  FloatRaw raw() const { return FloatRaw{exp_, sig_}; }
  const FloatFormat& format() const { return fmt_; }

  friend bool operator==(const SoftFloat& a, const SoftFloat& b) {
    return a.sig_ == b.sig_ && (a.sig_ == 0 || a.exp_ == b.exp_);
  }

 private:
  FloatFormat fmt_;
  std::int32_t exp_;   ///< unbiased exponent; meaningful only when sig_ != 0
  std::uint64_t sig_;  ///< M+1-bit significand, or 0 for the number zero
};

/// a + b, correctly rounded per `mode`.
SoftFloat fl_add(const SoftFloat& a, const SoftFloat& b, ArithFlags& flags,
                 RoundingMode mode = RoundingMode::kNearestEven);

/// a * b, correctly rounded per `mode`.
SoftFloat fl_mul(const SoftFloat& a, const SoftFloat& b, ArithFlags& flags,
                 RoundingMode mode = RoundingMode::kNearestEven);

/// Exact comparisons / selection (no rounding).
bool fl_less(const SoftFloat& a, const SoftFloat& b);
SoftFloat fl_min(const SoftFloat& a, const SoftFloat& b);
SoftFloat fl_max(const SoftFloat& a, const SoftFloat& b);

// ---- raw-word kernels -------------------------------------------------------
// The same operators on bare (exp, sig) words of one shared (pre-validated)
// format.  fl_add / fl_mul / fl_max are thin wrappers over these, so any
// consumer holding raw words — the batched SoA low-precision engine in
// ac/batch_lowprec.hpp — is bit-identical to the SoftFloat object level by
// construction.

/// a + b on raw words, correctly rounded per `mode`.
FloatRaw fl_add_raw(const FloatRaw& a, const FloatRaw& b, const FloatFormat& fmt,
                    ArithFlags& flags, RoundingMode mode = RoundingMode::kNearestEven);

/// a * b on raw words, correctly rounded per `mode`.
FloatRaw fl_mul_raw(const FloatRaw& a, const FloatRaw& b, const FloatFormat& fmt,
                    ArithFlags& flags, RoundingMode mode = RoundingMode::kNearestEven);

/// Exact a < b on raw words (lexicographic on (exp, sig) with zero lowest).
bool fl_less_raw(const FloatRaw& a, const FloatRaw& b);

/// Exact max on raw words.
inline FloatRaw fl_max_raw(const FloatRaw& a, const FloatRaw& b) {
  return fl_less_raw(a, b) ? b : a;
}

/// Widens a raw word back to double — identical to SoftFloat::to_double.
double fl_raw_to_double(const FloatRaw& raw, const FloatFormat& fmt);

// ---- decomposed lane kernels ------------------------------------------------
// The same operators on *decomposed* (exp, sig) words — exponent in an i32
// lane, significand in a u32 lane when FloatFormat::fits_narrow_word()
// (M <= 27) or a u64 lane when fits_lane_word() (M <= 31).  These are the
// per-word semantics of the lane-parallel float datapath: the batched SoA
// engine stores separate exponent and significand rows and
// ac/simd_sweep_impl.hpp executes these kernels over contiguous lane arrays
// inside the per-ISA translation units.  They are written branch-free —
// every select is a ternary the vectoriser turns into a blend, every shift
// count is clamped below the lane width so no input (including the garbage
// a masked-off zero-operand path computes on) invokes UB, and
// overflow/underflow are reported as 0/1 values OR-ed into per-lane mask
// accumulators, never sticky bool stores — so the surrounding lane loops
// vectorise.
//
// Each kernel replays fl_add_raw / fl_mul_raw / fl_max_raw bit for bit:
//
//  * the smaller addend aligns with 3 guard bits and the dropped bits fold
//    into a sticky OR, exactly the wide path's GRS alignment (an exponent
//    gap clamped at the lane width only ever lands in the "pure sticky"
//    region d > M+4, where the wide path also contributes exactly 1);
//  * since both operands are normalised, the guard-extended sum has its msb
//    at M+3 or M+4 and the exact product at 2M or 2M+1, so make_normalized's
//    msb scan collapses to one carry bit and the variable-shift rounding
//    (shift 3+carry for add, M+carry for mul) is the wide path's
//    round_shift_right at the same shift;
//  * nearest-even rounds via the carry-bias identity
//    kept = (v + (half-1) + ((v>>s)&1)) >> s, whose bias cannot wrap the
//    lane (sum <= 2^(M+5)-15 with bias <= 8 at M <= 27; product
//    <= 2^(2M+2)-2^(M+2)+1 with bias <= 2^M at M <= 31);
//  * overflow saturates to (emax, 2^(M+1)-1) and a non-zero product below
//    2^emin flushes to zero, each OR-ing a nonzero value into its mask
//    exactly when the wide path would raise the flag (adds never underflow:
//    the sum's exponent is >= the larger operand's).
//
// sig == 0 encodes zero throughout; the exponent lane of a zero result is
// unspecified (consumers select on sig, and FloatRaw equality ignores exp
// when sig == 0).  tests/soft_float_test.cpp proves parity exhaustively at
// small widths and randomized at the u32/u64 lane boundaries.

namespace detail {

/// a + b on decomposed lanes; Sig is the significand lane type.  Results
/// land in (re, rs); an overflowing lane ORs a nonzero value into
/// `ovf_mask`.  `m` is FloatFormat::mantissa_bits, `max_exp` the format's
/// largest unbiased exponent.
template <class Sig, RoundingMode Mode>
inline void fl_add_raw_lane(std::int32_t ea, Sig sa, std::int32_t eb, Sig sb, int m,
                            std::int32_t max_exp, std::int32_t& re, Sig& rs,
                            Sig& ovf_mask) {
  constexpr std::int32_t kShiftMax = static_cast<std::int32_t>(sizeof(Sig) * 8) - 1;
  // Mask-select the larger-exponent operand (ties keep `a`, like the wide
  // path — the d == 0 sum is symmetric anyway).
  const bool a_big = ea >= eb;
  const std::int32_t be = a_big ? ea : eb;
  const Sig bigs = a_big ? sa : sb;
  const Sig smalls = a_big ? sb : sa;
  const std::int32_t d = a_big ? ea - eb : eb - ea;
  // Align the smaller addend with 3 guard bits, folding every dropped bit
  // into a sticky OR.  The shift clamp at the lane width is exact: for
  // d > M+4 the kept bits are already 0 and the sticky contributes the same
  // 1 the wide path's "entirely below the guard bits" branch does.
  const Sig sdd = static_cast<Sig>(d > kShiftMax ? kShiftMax : d);
  const Sig asig3 = bigs << 3;
  const Sig shifted = smalls << 3;
  const Sig keptb = shifted >> sdd;
  const Sig bsig3 = keptb | static_cast<Sig>((shifted ^ (keptb << sdd)) != 0);
  const Sig sum = asig3 + bsig3;
  // Both operands normalised => msb(sum) is M+3 or M+4: one carry bit
  // replaces the wide path's msb scan, and the rounding shift is 3+carry.
  const Sig carry = sum >> (m + 4);
  const Sig shift = static_cast<Sig>(3) + carry;
  Sig kept;
  if constexpr (Mode == RoundingMode::kNearestEven) {
    const Sig half = static_cast<Sig>(4) << carry;
    kept = (sum + (half - 1) + ((sum >> shift) & 1)) >> shift;
  } else {
    kept = sum >> shift;
  }
  // Rounding may carry into a new binade (kept == 2^(M+1)): renormalise.
  const Sig rc = kept >> (m + 1);
  kept >>= rc;
  const std::int32_t exp = be + static_cast<std::int32_t>(carry + rc);
  // Overflow saturation (adds never underflow: exp >= be >= emin).
  const bool ovf = exp > max_exp;
  const Sig sig_max = (static_cast<Sig>(1) << (m + 1)) - 1;
  // Zero-operand end-select: x + 0 = x exactly, no flags.
  const bool a_zero = sa == 0;
  const bool b_zero = sb == 0;
  rs = a_zero ? sb : (b_zero ? sa : (ovf ? sig_max : kept));
  re = a_zero ? eb : (b_zero ? ea : (ovf ? max_exp : exp));
  ovf_mask |= static_cast<Sig>(ovf & !a_zero & !b_zero);
}

/// a * b on decomposed lanes.  The exact significand product widens through
/// u64 (one 32x32->64 lane multiply on the u32 path; 2M+2 <= 64 bits on the
/// u64 path).  `min_exp`/`max_exp` bound the format's unbiased exponents;
/// overflowing / underflowing lanes OR nonzero values into their masks.
template <class Sig, RoundingMode Mode>
inline void fl_mul_raw_lane(std::int32_t ea, Sig sa, std::int32_t eb, Sig sb, int m,
                            std::int32_t min_exp, std::int32_t max_exp, std::int32_t& re,
                            Sig& rs, Sig& ovf_mask, Sig& und_mask) {
  const std::uint64_t prod = static_cast<std::uint64_t>(sa) * sb;
  // Normalised operands => msb(prod) is 2M or 2M+1: the rounding shift is
  // M+carry, the wide path's msb - M.
  const std::uint64_t carry = prod >> (2 * m + 1);
  const std::uint64_t shift = static_cast<std::uint64_t>(m) + carry;
  std::uint64_t kept;
  if constexpr (Mode == RoundingMode::kNearestEven) {
    const std::uint64_t half = (std::uint64_t{1} << (m - 1)) << carry;
    kept = (prod + (half - 1) + ((prod >> shift) & 1)) >> shift;
  } else {
    kept = prod >> shift;
  }
  const std::uint64_t rc = kept >> (m + 1);
  kept >>= rc;
  const std::int32_t exp = ea + eb + static_cast<std::int32_t>(carry + rc);
  const bool ovf = exp > max_exp;
  const bool und = exp < min_exp;
  const Sig sig_max = (static_cast<Sig>(1) << (m + 1)) - 1;
  // kept < 2^(M+1) fits Sig; a zero operand or an underflow flushes to 0.
  const bool active = (sa != 0) & (sb != 0);
  const Sig sig = ovf ? sig_max : (und ? static_cast<Sig>(0) : static_cast<Sig>(kept));
  rs = active ? sig : static_cast<Sig>(0);
  re = ovf ? max_exp : exp;
  ovf_mask |= static_cast<Sig>(ovf & active);
  und_mask |= static_cast<Sig>(und & active);
}

/// Exact max on decomposed lanes — fl_less_raw's zero-lowest lexicographic
/// (exp, sig) order, as straight-line selects.
template <class Sig>
inline void fl_max_raw_lane(std::int32_t ea, Sig sa, std::int32_t eb, Sig sb,
                            std::int32_t& re, Sig& rs) {
  const bool a_nz = sa != 0;
  const bool b_nz = sb != 0;
  const bool lt = (!a_nz & b_nz) | (a_nz & b_nz & ((ea < eb) | ((ea == eb) & (sa < sb))));
  re = lt ? eb : ea;
  rs = lt ? sb : sa;
}

}  // namespace detail

/// u32-significand lane kernels (FloatFormat::fits_narrow_word(), M <= 27).
template <RoundingMode Mode>
inline void fl_add_raw_u32(std::int32_t ea, std::uint32_t sa, std::int32_t eb,
                           std::uint32_t sb, int m, std::int32_t max_exp, std::int32_t& re,
                           std::uint32_t& rs, std::uint32_t& ovf_mask) {
  detail::fl_add_raw_lane<std::uint32_t, Mode>(ea, sa, eb, sb, m, max_exp, re, rs, ovf_mask);
}
template <RoundingMode Mode>
inline void fl_mul_raw_u32(std::int32_t ea, std::uint32_t sa, std::int32_t eb,
                           std::uint32_t sb, int m, std::int32_t min_exp, std::int32_t max_exp,
                           std::int32_t& re, std::uint32_t& rs, std::uint32_t& ovf_mask,
                           std::uint32_t& und_mask) {
  detail::fl_mul_raw_lane<std::uint32_t, Mode>(ea, sa, eb, sb, m, min_exp, max_exp, re, rs,
                                               ovf_mask, und_mask);
}
inline void fl_max_raw_u32(std::int32_t ea, std::uint32_t sa, std::int32_t eb,
                           std::uint32_t sb, std::int32_t& re, std::uint32_t& rs) {
  detail::fl_max_raw_lane<std::uint32_t>(ea, sa, eb, sb, re, rs);
}

/// u64-significand lane kernels (FloatFormat::fits_lane_word(), M <= 31).
template <RoundingMode Mode>
inline void fl_add_raw_u64(std::int32_t ea, std::uint64_t sa, std::int32_t eb,
                           std::uint64_t sb, int m, std::int32_t max_exp, std::int32_t& re,
                           std::uint64_t& rs, std::uint64_t& ovf_mask) {
  detail::fl_add_raw_lane<std::uint64_t, Mode>(ea, sa, eb, sb, m, max_exp, re, rs, ovf_mask);
}
template <RoundingMode Mode>
inline void fl_mul_raw_u64(std::int32_t ea, std::uint64_t sa, std::int32_t eb,
                           std::uint64_t sb, int m, std::int32_t min_exp, std::int32_t max_exp,
                           std::int32_t& re, std::uint64_t& rs, std::uint64_t& ovf_mask,
                           std::uint64_t& und_mask) {
  detail::fl_mul_raw_lane<std::uint64_t, Mode>(ea, sa, eb, sb, m, min_exp, max_exp, re, rs,
                                               ovf_mask, und_mask);
}
inline void fl_max_raw_u64(std::int32_t ea, std::uint64_t sa, std::int32_t eb,
                           std::uint64_t sb, std::int32_t& re, std::uint64_t& rs) {
  detail::fl_max_raw_lane<std::uint64_t>(ea, sa, eb, sb, re, rs);
}

}  // namespace problp::lowprec
