// Number-format descriptors for the two representations ProbLP chooses
// between (paper §3.1):
//
//  * FixedFormat  — unsigned fixed point with I integer and F fraction bits.
//    Arithmetic circuits only ever see non-negative values, so there is no
//    sign bit; the representable range is [0, 2^I - 2^-F] on a uniform grid
//    of resolution 2^-F.
//
//  * FloatFormat  — normalised floating point with E exponent and M mantissa
//    bits and no sign bit.  Encoding convention (documented because the paper
//    only says "normalized"): the stored exponent field value 0 is reserved
//    to encode the number zero (indicators λ = 0 must be representable), so
//    normal numbers use stored exponents [1, 2^E - 1] giving unbiased
//    exponents [2 - 2^(E-1), 2^(E-1)] with the IEEE-style bias 2^(E-1) - 1.
//    There are no subnormals, infinities or NaNs; overflow saturates and
//    underflow flushes to zero, and both raise a flag so the range analysis
//    (§3.1.4) can be verified to preclude them.
#pragma once

#include <string>

#include "util/int_math.hpp"

namespace problp::lowprec {

struct FixedFormat {
  int integer_bits = 1;   ///< I >= 0
  int fraction_bits = 8;  ///< F >= 0

  /// Widest total width the lane-parallel narrow-word datapath of the
  /// batched engine accepts: 30-bit operands fit u32 storage lanes outright,
  /// and keep the exact product within 60 bits (plus headroom for the
  /// rounding increment) and within one 32x32->64 vector multiply, so
  /// add/mul/round/saturate all close over uint64_t intermediates.  See
  /// ac/simd_sweep.hpp and docs/evaluation.md.
  static constexpr int kNarrowWordBits = 30;

  /// Total datapath width N = I + F (the N of the Table-1 energy models).
  int total_bits() const { return integer_bits + fraction_bits; }

  /// Whether raw words of this format qualify for the narrow-word (u32)
  /// datapath; wider formats run on the 128-bit emulation path.
  bool fits_narrow_word() const { return total_bits() <= kNarrowWordBits; }

  /// Grid spacing 2^-F.
  double resolution() const { return pow2(-fraction_bits); }

  /// Largest representable value 2^I - 2^-F.
  double max_value() const { return pow2(integer_bits) - resolution(); }

  /// Worst-case round-to-nearest conversion error, 2^-(F+1) (paper eq. 2).
  double quantization_bound() const { return pow2(-(fraction_bits + 1)); }

  /// Raw (scaled-integer) value of max_value().
  u128 max_raw() const { return u128_pow2(total_bits()) - 1; }

  /// Throws InvalidArgument when the format cannot be emulated exactly
  /// (products are computed in 128-bit intermediates, so I+F <= 62).
  void validate() const;

  std::string to_string() const;  ///< e.g. "fx<I=1,F=15>"

  friend bool operator==(const FixedFormat&, const FixedFormat&) = default;
};

struct FloatFormat {
  int exponent_bits = 8;  ///< E >= 2
  int mantissa_bits = 8;  ///< M >= 1 (explicit fraction bits; hidden leading 1)

  /// Widest mantissa the u32-significand lane datapath of the batched float
  /// engine accepts: the add path's guard-extended sum carries M+5 bits
  /// (two (M+1)-bit significands shifted up by 3 guard bits plus one carry),
  /// which must close over the u32 storage lane, so M <= 27.  Exponent rows
  /// are always i32 lanes.  See lowprec/soft_float.hpp and
  /// docs/evaluation.md.
  static constexpr int kNarrowSigMantissaBits = 27;

  /// Widest mantissa any decomposed lane datapath accepts: the exact
  /// significand product carries 2M+2 bits, which must close over one u64
  /// lane multiply, so M <= 31.  Wider formats stay on the lane-serial
  /// interleaved FloatRaw path (u128 intermediates).
  static constexpr int kLaneSigMantissaBits = 31;

  /// Whether significands of this format fit u32 storage lanes in the
  /// decomposed (exp, sig) SoA datapath — the float analogue of
  /// FixedFormat::fits_narrow_word().
  bool fits_narrow_word() const { return mantissa_bits <= kNarrowSigMantissaBits; }

  /// Whether the decomposed lane datapath applies at all (u32 or u64
  /// significand lanes); false keeps the wide interleaved path.
  bool fits_lane_word() const { return mantissa_bits <= kLaneSigMantissaBits; }

  /// IEEE-style bias.
  int bias() const { return (1 << (exponent_bits - 1)) - 1; }

  /// Smallest unbiased exponent of a normal number (stored field 1).
  int min_exponent() const { return 1 - bias(); }

  /// Largest unbiased exponent (stored field 2^E - 1; no encodings reserved
  /// for inf/NaN).
  int max_exponent() const { return ((1 << exponent_bits) - 1) - bias(); }

  /// Relative rounding bound epsilon = 2^-(M+1) (paper eq. 6).
  double epsilon() const { return pow2(-(mantissa_bits + 1)); }

  /// Largest representable value (2 - 2^-M) * 2^emax.
  double max_value() const {
    return (2.0 - pow2(-mantissa_bits)) * pow2(max_exponent());
  }

  /// Smallest positive representable value 2^emin.
  double min_normal() const { return pow2(min_exponent()); }

  /// Throws InvalidArgument when the format cannot be emulated exactly
  /// (M <= 60 so M+1-bit significands fit uint64_t with guard room, E <= 28
  /// so exponent arithmetic stays far from int overflow).
  void validate() const;

  std::string to_string() const;  ///< e.g. "fl<E=8,M=13>"

  friend bool operator==(const FloatFormat&, const FloatFormat&) = default;
};

/// IEEE-754 binary32 sized reference format (the paper's "32b Fl-pt, E=8,
/// M=23" comparison column).  Note our encoding has no inf/NaN, so its range
/// is one binade wider at the top; this does not affect energy, which depends
/// only on M.
inline FloatFormat ieee_single_sized() { return FloatFormat{8, 23}; }

/// Sticky flags accumulated across emulated operations.  The error models of
/// §3.1 are valid only when no flag fires; the range analysis of §3.1.4
/// guarantees that, and the tests assert it.
struct ArithFlags {
  bool overflow = false;        ///< a result exceeded the format's max (saturated)
  bool underflow = false;       ///< a non-zero float result fell below 2^emin (flushed to 0)
  bool invalid_input = false;   ///< a conversion saw a negative/NaN/inf input

  bool any() const { return overflow || underflow || invalid_input; }
  void merge(const ArithFlags& o) {
    overflow |= o.overflow;
    underflow |= o.underflow;
    invalid_input |= o.invalid_input;
  }
};

/// Rounding behaviour of the emulated operators.  The paper assumes
/// round-to-nearest (§3.1); Truncate is kept for the rounding-model ablation
/// bench (its worst-case step error is 2^-F, twice the nearest bound).
enum class RoundingMode {
  kNearestEven,  ///< round to nearest, ties to even (IEEE default)
  kTruncate,     ///< drop the extra bits (round toward zero)
};

/// Rounds `value` right-shifted by `shift` bits according to `mode`.
/// shift <= 0 shifts left (exact).  Used by both emulators.  Inline: this
/// sits on the per-op hot path of every emulated multiply, and the batched
/// raw-word sweeps execute it once per lane.
inline u128 round_shift_right(u128 value, int shift, RoundingMode mode) {
  if (shift <= 0) return value << (-shift);
  if (shift >= 128) {
    // Everything is shifted out; only the sticky/half information survives.
    if (mode == RoundingMode::kTruncate) return 0;
    return 0;  // value < 2^128 <= half of 2^129 grid: rounds to 0 unless
               // shift == 128 and value >= 2^127, which cannot reach here in
               // practice (operands are <= 124 bits); keep conservative 0.
  }
  const u128 kept = value >> shift;
  if (mode == RoundingMode::kTruncate) return kept;
  const u128 rem = value - (kept << shift);
  const u128 half = u128_pow2(shift - 1);
  if (rem > half) return kept + 1;
  if (rem < half) return kept;
  return kept + (kept & 1);  // tie: round to even
}

}  // namespace problp::lowprec
